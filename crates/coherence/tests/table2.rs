//! Row-by-row conformance against the paper's Table 2.
//!
//! Each test drives a controller into one of Table 2's states, applies one
//! column's event, and checks the printed `<action>/<next state>` entry:
//! the emitted messages, the successor state, the "error" cells, and the
//! `z` (stall) cells. This is the most direct fidelity artifact in the
//! repository — the table in the paper is the protocol.

use fsoi_check::{checker, vec_of};
use fsoi_coherence::directory::Directory;
use fsoi_coherence::l1::L1Controller;
use fsoi_coherence::protocol::{CoherenceMsg, DirState, Grant, L1State, LineAddr, ReqType};

const L: LineAddr = LineAddr(0x400);
const MEM: usize = 99;

// --------------------------------------------------------------------- L1

fn l1() -> L1Controller {
    let mut c = L1Controller::new(3, 64, 2, 32);
    c.set_home_nodes(16);
    c
}

/// Drives a fresh L1 into the requested Table 2 state for line `L`.
fn l1_in(state: L1State) -> L1Controller {
    let mut c = l1();
    match state {
        L1State::I => {}
        L1State::S => {
            c.read(L);
            c.handle(CoherenceMsg::Data {
                grant: Grant::Shared,
                line: L,
            })
            .unwrap();
        }
        L1State::E => {
            c.read(L);
            c.handle(CoherenceMsg::Data {
                grant: Grant::Exclusive,
                line: L,
            })
            .unwrap();
        }
        L1State::M => {
            c.write(L);
            c.handle(CoherenceMsg::Data {
                grant: Grant::Modified,
                line: L,
            })
            .unwrap();
        }
        L1State::ISD => {
            c.read(L);
        }
        L1State::IMD => {
            c.write(L);
        }
        L1State::SMA => {
            c.read(L);
            c.handle(CoherenceMsg::Data {
                grant: Grant::Shared,
                line: L,
            })
            .unwrap();
            c.write(L);
        }
    }
    assert_eq!(c.state_of(L), state, "setup failed");
    c
}

#[test]
fn l1_row_i() {
    // I: Read → Req(Sh)/I.SD ; Write → Req(Ex)/I.MD ; Inv → InvAck/I ;
    // Dwg → DwgAck/I.
    let mut c = l1_in(L1State::I);
    let a = c.read(L);
    assert!(matches!(
        a.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Sh,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::ISD);

    let mut c = l1_in(L1State::I);
    let a = c.write(L);
    assert!(matches!(
        a.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Ex,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::I);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::I);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::DwgAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::I);

    // Data/ExcAck in I: error cells.
    assert!(l1_in(L1State::I)
        .handle(CoherenceMsg::Data {
            grant: Grant::Shared,
            line: L
        })
        .is_err());
    assert!(l1_in(L1State::I)
        .handle(CoherenceMsg::ExcAck { line: L })
        .is_err());
}

#[test]
fn l1_row_s() {
    // S: Read → do read/S ; Write → Req(Upg)/S.MA ; Repl → evict/I ;
    // Inv → InvAck/I ; Dwg → error.
    let mut c = l1_in(L1State::S);
    assert!(c.read(L).hit);
    assert_eq!(c.state_of(L), L1State::S);

    let mut c = l1_in(L1State::S);
    let a = c.write(L);
    assert!(matches!(
        a.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Upg,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::SMA);

    let mut c = l1_in(L1State::S);
    assert!(c.evict(L).is_empty(), "silent eviction");
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::S);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::I);

    assert!(l1_in(L1State::S)
        .handle(CoherenceMsg::Dwg { line: L })
        .is_err());
}

#[test]
fn l1_row_e() {
    // E: Read → E ; Write → do write/M (silent) ; Repl → evict/I ;
    // Inv → InvAck/I ; Dwg → DwgAck/S.
    let mut c = l1_in(L1State::E);
    assert!(c.read(L).hit);
    assert_eq!(c.state_of(L), L1State::E);

    let mut c = l1_in(L1State::E);
    let a = c.write(L);
    assert!(a.hit && a.out.is_empty(), "silent E→M");
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::E);
    assert!(c.evict(L).is_empty());
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::E);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: false,
            ..
        }
    ));

    let mut c = l1_in(L1State::E);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::DwgAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::S);
}

#[test]
fn l1_row_m() {
    // M: hits; Repl → evict (writeback)/I ; Inv → InvAck(D)/I ;
    // Dwg → DwgAck(D)/S.
    let mut c = l1_in(L1State::M);
    assert!(c.read(L).hit && c.write(L).hit);

    let mut c = l1_in(L1State::M);
    let out = c.evict(L);
    assert!(matches!(out[0].msg, CoherenceMsg::WriteBack { .. }));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::M);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: true,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::M);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::DwgAck {
            with_data: true,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::S);
}

#[test]
fn l1_row_isd() {
    // I.SD: Read/Write/Repl → z ; Data → save & read/S or E ;
    // Inv → InvAck/I.SD ; Dwg → DwgAck/I.SD ; Retry → Req(Sh).
    let mut c = l1_in(L1State::ISD);
    assert!(c.read(L).stalled && c.write(L).stalled, "z cells");

    let mut c = l1_in(L1State::ISD);
    let r = c
        .handle(CoherenceMsg::Data {
            grant: Grant::Shared,
            line: L,
        })
        .unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::S);

    let mut c = l1_in(L1State::ISD);
    c.handle(CoherenceMsg::Data {
        grant: Grant::Exclusive,
        line: L,
    })
    .unwrap();
    assert_eq!(c.state_of(L), L1State::E, "or E");

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { .. }));
    assert_eq!(c.state_of(L), L1State::ISD, "stays I.SD");

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::DwgAck { .. }));
    assert_eq!(c.state_of(L), L1State::ISD);

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Sh,
            ..
        }
    ));
}

#[test]
fn l1_row_imd() {
    // I.MD: z on processor ops ; Data → save & write/M ;
    // Inv → InvAck/I.MD ; Dwg → DwgAck/I.MD ; Retry → Req(Ex).
    let mut c = l1_in(L1State::IMD);
    assert!(c.read(L).stalled && c.write(L).stalled);

    let mut c = l1_in(L1State::IMD);
    let r = c
        .handle(CoherenceMsg::Data {
            grant: Grant::Modified,
            line: L,
        })
        .unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::IMD);
    c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::IMD);
    c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::IMD);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Ex,
            ..
        }
    ));
}

#[test]
fn l1_row_sma() {
    // S.MA: z on processor ops ; Data → error ; ExcAck → do write/M ;
    // Inv → InvAck/I.MD ; Dwg → error ; Retry → Req(Upg).
    let mut c = l1_in(L1State::SMA);
    assert!(c.read(L).stalled && c.write(L).stalled);

    assert!(l1_in(L1State::SMA)
        .handle(CoherenceMsg::Data {
            grant: Grant::Modified,
            line: L
        })
        .is_err());

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::ExcAck { line: L }).unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::IMD, "the upgrade race");

    assert!(l1_in(L1State::SMA)
        .handle(CoherenceMsg::Dwg { line: L })
        .is_err());

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::Req {
            kind: ReqType::Upg,
            ..
        }
    ));
}

// -------------------------------------------------------------- Directory

fn dir_in(state: DirState) -> Directory {
    let mut d = Directory::new(0, MEM, 1024);
    let req = |k| CoherenceMsg::Req { kind: k, line: L };
    match state {
        DirState::DI => {}
        DirState::DIDSD => {
            d.handle(1, req(ReqType::Sh)).unwrap();
        }
        DirState::DIDMD => {
            d.handle(1, req(ReqType::Ex)).unwrap();
        }
        DirState::DM => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
        }
        DirState::DV => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
            d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
        }
        DirState::DS => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
            d.handle(2, req(ReqType::Sh)).unwrap();
            d.handle(
                1,
                CoherenceMsg::DwgAck {
                    line: L,
                    with_data: true,
                },
            )
            .unwrap();
        }
        DirState::DMDSD => {
            let mut base = dir_in(DirState::DM);
            base.handle(2, req(ReqType::Sh)).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDSD);
            return base;
        }
        DirState::DMDMD => {
            let mut base = dir_in(DirState::DM);
            base.handle(2, req(ReqType::Ex)).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDMD);
            return base;
        }
        DirState::DMDSA => {
            let mut base = dir_in(DirState::DMDSD);
            base.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDSA);
            return base;
        }
        DirState::DMDMA => {
            let mut base = dir_in(DirState::DMDMD);
            base.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDMA);
            return base;
        }
        DirState::DSDMDA => {
            let mut base = dir_in(DirState::DS);
            base.handle(4, req(ReqType::Ex)).unwrap();
            assert_eq!(base.state_of(L), DirState::DSDMDA);
            return base;
        }
        DirState::DSDMA => {
            let mut base = dir_in(DirState::DS);
            base.handle(2, req(ReqType::Upg)).unwrap();
            assert_eq!(base.state_of(L), DirState::DSDMA);
            return base;
        }
        DirState::DSDIA | DirState::DMDID => {
            unreachable!("capacity-eviction states are set up in their tests")
        }
    }
    assert_eq!(d.state_of(L), state, "setup failed");
    d
}

#[test]
fn dir_row_di() {
    // DI: Req(Sh) → Req(Mem)/DI.DSD ; Req(Ex)/Req(Upg) → Req(Mem)/DI.DMD ;
    // WriteBack/InvAck/DwgAck/MemAck → error.
    let mut d = dir_in(DirState::DI);
    let out = d
        .handle(
            1,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line: L,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::MemReq { write: false, .. }
    ));
    assert_eq!(d.state_of(L), DirState::DIDSD);

    for kind in [ReqType::Ex, ReqType::Upg] {
        let mut d = dir_in(DirState::DI);
        d.handle(1, CoherenceMsg::Req { kind, line: L }).unwrap();
        assert_eq!(
            d.state_of(L),
            DirState::DIDMD,
            "{kind:?} reinterprets to Ex"
        );
    }

    assert!(dir_in(DirState::DI)
        .handle(1, CoherenceMsg::WriteBack { line: L })
        .is_err());
    assert!(dir_in(DirState::DI)
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false
            }
        )
        .is_err());
    assert!(dir_in(DirState::DI)
        .handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: false
            }
        )
        .is_err());
    assert!(dir_in(DirState::DI)
        .handle(MEM, CoherenceMsg::MemAck { line: L })
        .is_err());
}

#[test]
fn dir_row_dv() {
    // DV: Req(Sh) → Data(E)/DM ; Req(Ex) → Data(M)/DM.
    let mut d = dir_in(DirState::DV);
    let out = d
        .handle(
            7,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line: L,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Exclusive,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(7));

    let mut d = dir_in(DirState::DV);
    let out = d
        .handle(
            7,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line: L,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    ));

    assert!(dir_in(DirState::DV)
        .handle(1, CoherenceMsg::WriteBack { line: L })
        .is_err());
    assert!(dir_in(DirState::DV)
        .handle(MEM, CoherenceMsg::MemAck { line: L })
        .is_err());
}

#[test]
fn dir_row_ds() {
    // DS: Req(Sh) → Data(S)/DS ; Req(Ex) → Inv/DS.DMᴰᴬ ;
    // Req(Upg from sharer) → Inv/DS.DMᴬ.
    let mut d = dir_in(DirState::DS);
    let out = d
        .handle(
            5,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line: L,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Shared,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DS);
    assert!(d.sharers_of(L).contains(&5));

    let mut d = dir_in(DirState::DS);
    let out = d
        .handle(
            9,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line: L,
            },
        )
        .unwrap();
    assert!(out
        .iter()
        .all(|m| matches!(m.msg, CoherenceMsg::Inv { .. })));
    assert_eq!(out.len(), 2, "both sharers invalidated");
    assert_eq!(d.state_of(L), DirState::DSDMDA);

    let mut d = dir_in(DirState::DS);
    let out = d
        .handle(
            2,
            CoherenceMsg::Req {
                kind: ReqType::Upg,
                line: L,
            },
        )
        .unwrap();
    assert_eq!(out.len(), 1, "only the other sharer invalidated");
    assert_eq!(d.state_of(L), DirState::DSDMA);
}

#[test]
fn dir_row_dm() {
    // DM: Req(Sh) → Dwg/DM.DSᴰ ; Req(Ex) → Inv/DM.DMᴰ ; WriteBack → save/DV.
    let mut d = dir_in(DirState::DM);
    let out = d
        .handle(
            2,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line: L,
            },
        )
        .unwrap();
    assert_eq!(out[0].to, 1, "downgrade goes to the owner");
    assert!(matches!(out[0].msg, CoherenceMsg::Dwg { .. }));
    assert_eq!(d.state_of(L), DirState::DMDSD);

    let mut d = dir_in(DirState::DM);
    let out = d
        .handle(
            2,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line: L,
            },
        )
        .unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Inv { .. }));
    assert_eq!(d.state_of(L), DirState::DMDMD);

    let mut d = dir_in(DirState::DM);
    assert!(d
        .handle(1, CoherenceMsg::WriteBack { line: L })
        .unwrap()
        .is_empty());
    assert_eq!(d.state_of(L), DirState::DV);
}

#[test]
fn dir_rows_didsd_didmd() {
    // DI.DSᴰ / DI.DMᴰ: Req* → z ; MemAck → repl & fwd/DM.
    let mut d = dir_in(DirState::DIDSD);
    let out = d
        .handle(
            5,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line: L,
            },
        )
        .unwrap();
    assert!(out.is_empty(), "z: deferred");
    let out = d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Exclusive,
            ..
        }
    ));
    // The deferred Req(Sh) then replays against DM (downgrade).
    assert!(out
        .iter()
        .any(|m| matches!(m.msg, CoherenceMsg::Dwg { .. })));

    let mut d = dir_in(DirState::DIDMD);
    let out = d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DM);

    assert!(dir_in(DirState::DIDSD)
        .handle(1, CoherenceMsg::WriteBack { line: L })
        .is_err());
}

#[test]
fn dir_rows_dsdmda_dsdma() {
    // DS.DMᴰᴬ: last InvAck → Data(M)/DM. DS.DMᴬ: last InvAck → ExcAck/DM.
    let mut d = dir_in(DirState::DSDMDA);
    assert!(d
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false
            }
        )
        .unwrap()
        .is_empty());
    let out = d
        .handle(
            2,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(4));

    let mut d = dir_in(DirState::DSDMA);
    let out = d
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::ExcAck { .. }));
    assert_eq!(d.owner_of(L), Some(2));

    // MemAck in these states: error.
    assert!(dir_in(DirState::DSDMDA)
        .handle(MEM, CoherenceMsg::MemAck { line: L })
        .is_err());
}

#[test]
fn dir_rows_dmdsd_dmdsa() {
    // DM.DSᴰ: DwgAck → save & fwd (Data(S), both share) ;
    // WriteBack → save/DM.DSᴬ, then DwgAck → Data(E)/DM.
    let mut d = dir_in(DirState::DMDSD);
    let out = d
        .handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: true,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Shared,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DS);
    let mut sharers = d.sharers_of(L);
    sharers.sort_unstable();
    assert_eq!(sharers, vec![1, 2]);

    let mut d = dir_in(DirState::DMDSA);
    let out = d
        .handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Exclusive,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(2));

    // InvAck in DM.DSᴰ: error.
    assert!(dir_in(DirState::DMDSD)
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false
            }
        )
        .is_err());
}

#[test]
fn dir_rows_dmdmd_dmdma() {
    // DM.DMᴰ: InvAck → save & fwd/DM ; WriteBack → save/DM.DMᴬ, then
    // InvAck → Data(M)/DM.
    let mut d = dir_in(DirState::DMDMD);
    let out = d
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: true,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    ));
    assert_eq!(d.owner_of(L), Some(2));

    let mut d = dir_in(DirState::DMDMA);
    let out = d
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    ));
    assert_eq!(d.state_of(L), DirState::DM);

    // DwgAck in DM.DMᴰ: error.
    assert!(dir_in(DirState::DMDMD)
        .handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: false
            }
        )
        .is_err());
}

#[test]
fn dir_rows_repl_eviction_paths() {
    // Repl on DS → Inv/DS.DIᴬ → last InvAck → evict/DI.
    // Repl on DM → Inv/DM.DIᴰ → InvAck(D) → save & evict/DI,
    //   or WriteBack (crossing) → save/DS.DIᴬ.
    // Driven via capacity pressure on a 4-line slice.
    let mut d = Directory::new(0, MEM, 4);
    let lines: Vec<LineAddr> = (0..5u64).map(|i| LineAddr(0x1000 + i * 32)).collect();
    for &line in &lines {
        d.handle(
            1,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line,
            },
        )
        .unwrap();
        d.handle(MEM, CoherenceMsg::MemAck { line }).unwrap();
    }
    let victim = lines[0];
    assert_eq!(d.state_of(victim), DirState::DMDID, "DM Repl → DM.DIᴰ");
    // Crossing writeback: DM.DIᴰ + WriteBack → save/DS.DIᴬ.
    d.handle(1, CoherenceMsg::WriteBack { line: victim })
        .unwrap();
    assert_eq!(d.state_of(victim), DirState::DSDIA);
    // The ex-owner's InvAck completes the eviction.
    let out = d
        .handle(
            1,
            CoherenceMsg::InvAck {
                line: victim,
                with_data: false,
            },
        )
        .unwrap();
    assert!(matches!(
        out[0].msg,
        CoherenceMsg::MemReq { write: true, .. }
    ));
    assert_eq!(d.state_of(victim), DirState::DI);
}

#[test]
fn dir_deferred_upg_reinterprets_as_ex() {
    // The "(Req(Ex))" annotation: a deferred Upg whose requester is no
    // longer a sharer replays as Ex.
    let mut d = dir_in(DirState::DSDMDA); // node 4 taking exclusive from {1,2}
                                          // Node 2 (being invalidated) has an Upg in flight: deferred.
    assert!(d
        .handle(
            2,
            CoherenceMsg::Req {
                kind: ReqType::Upg,
                line: L
            }
        )
        .unwrap()
        .is_empty());
    // Acks complete node 4's transfer; node 2's stale Upg replays as a
    // full exclusive request: an Inv goes to the new owner 4.
    d.handle(
        1,
        CoherenceMsg::InvAck {
            line: L,
            with_data: false,
        },
    )
    .unwrap();
    let out = d
        .handle(
            2,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
    assert!(out.iter().any(|m| matches!(
        m.msg,
        CoherenceMsg::Data {
            grant: Grant::Modified,
            ..
        }
    )));
    assert!(
        out.iter()
            .any(|m| m.to == 4 && matches!(m.msg, CoherenceMsg::Inv { .. })),
        "stale Upg reinterpreted as Ex: {out:?}"
    );
    assert_eq!(d.state_of(L), DirState::DMDMD);
    assert!(d.stats().reinterpreted >= 1);
}

// ---------------------------------------------------- regression: SMA pin

/// Permanent named regression (L1 half of the recorded shrink
/// `[[Read(1, 8)], [Read(2, 8)], [Write(1, 8), Evict(1, 8)]]`): a
/// replacement arriving while the S→M upgrade is pending in S.Mᴬ must not
/// evict the line — the MSHR pins it — and the upgrade must still
/// complete when the ExcAck lands.
#[test]
fn l1_sma_pins_line_against_eviction() {
    let mut c = l1_in(L1State::SMA);
    let out = c.evict(L);
    assert!(
        out.is_empty(),
        "eviction under a pending upgrade is a no-op"
    );
    assert_eq!(c.state_of(L), L1State::SMA, "the MSHR pins the line");
    assert_eq!(c.outstanding(), 1);

    let r = c.handle(CoherenceMsg::ExcAck { line: L }).unwrap();
    assert_eq!(r.completed, Some(L), "upgrade still completes");
    assert_eq!(c.state_of(L), L1State::M);
    assert_eq!(c.outstanding(), 0);
}

/// And the race half: if the eviction attempt is followed by the
/// directory's Inv (our upgrade lost), the line drops to I.Mᴰ and the
/// reinterpreted exclusive grant must fill it back to M.
#[test]
fn l1_sma_evict_then_inv_falls_back_to_imd() {
    let mut c = l1_in(L1State::SMA);
    assert!(c.evict(L).is_empty());
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(
        r.out[0].msg,
        CoherenceMsg::InvAck {
            with_data: false,
            ..
        }
    ));
    assert_eq!(c.state_of(L), L1State::IMD, "the upgrade race");

    let r = c
        .handle(CoherenceMsg::Data {
            grant: Grant::Modified,
            line: L,
        })
        .unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::M);
    assert_eq!(c.outstanding(), 0);
}

// ------------------------------------------- doc-adjacent property tests

/// Doc-adjacent property: under any sequence of legal stimuli — processor
/// reads/writes/evictions, home-node invalidations, and immediate
/// responses to every request (with the Inv sometimes racing ahead of the
/// response, as in the S.Mᴬ → I.Mᴰ row) — the L1 never takes an error
/// transition, never strands an MSHR, and always settles in a stable
/// Table 2 state.
#[test]
fn l1_never_errors_under_legal_stimuli() {
    checker!().check(
        "l1_never_errors_under_legal_stimuli",
        vec_of((0u8..4, 0u64..12, 0u8..4), 1..80),
        |ops| {
            let mut c = l1();
            for &(kind, l, flags) in ops {
                let line = LineAddr(l * 32);
                let (race_inv, exclusive) = (flags & 1 != 0, flags & 2 != 0);
                let req = match kind {
                    0 => c.read(line).out,
                    1 => c.write(line).out,
                    2 => {
                        c.evict(line);
                        Vec::new()
                    }
                    _ => {
                        // A home-node Inv is legal in every Table 2 row.
                        c.handle(CoherenceMsg::Inv { line }).unwrap();
                        Vec::new()
                    }
                };
                // Answer the request the L1 just emitted, optionally
                // letting an Inv race in front of the response.
                if let Some(CoherenceMsg::Req {
                    kind: req_kind,
                    line,
                }) = req.first().map(|o| o.msg)
                {
                    if race_inv {
                        c.handle(CoherenceMsg::Inv { line }).unwrap();
                    }
                    let response = match req_kind {
                        ReqType::Sh => CoherenceMsg::Data {
                            grant: if exclusive {
                                Grant::Exclusive
                            } else {
                                Grant::Shared
                            },
                            line,
                        },
                        ReqType::Ex => CoherenceMsg::Data {
                            grant: Grant::Modified,
                            line,
                        },
                        ReqType::Upg => {
                            if race_inv {
                                // The directory reinterpreted the stale
                                // Upg as Ex and answers with data.
                                CoherenceMsg::Data {
                                    grant: Grant::Modified,
                                    line,
                                }
                            } else {
                                CoherenceMsg::ExcAck { line }
                            }
                        }
                    };
                    let r = c.handle(response).unwrap();
                    assert_eq!(r.completed, Some(line), "request completes");
                }
                assert_eq!(c.outstanding(), 0, "no MSHR survives a completed request");
                for probe in 0..12u64 {
                    let s = c.state_of(LineAddr(probe * 32));
                    assert!(
                        matches!(s, L1State::I | L1State::S | L1State::E | L1State::M),
                        "line {probe} stuck in transient {s:?}"
                    );
                }
            }
        },
    );
}

/// Doc-adjacent property: a directory slice serving perfectly-behaved L1s
/// (immediate acks, Table 2-conformant replies) never takes an error
/// transition and always quiesces in a base state that agrees with the
/// L1s' actual states.
#[test]
fn directory_never_errors_under_legal_streams() {
    checker!().check(
        "directory_never_errors_under_legal_streams",
        vec_of((0u8..3, 0u8..4, 0u8..2), 1..60),
        |ops| {
            let lines = [LineAddr(0x400), LineAddr(0x800)];
            let mut d = Directory::new(0, MEM, 1024);
            // states[node][line-index]; nodes 1..=3 are the fake L1s.
            let mut states = [[L1State::I; 2]; 4];
            let mut wire: std::collections::VecDeque<(usize, CoherenceMsg)> =
                std::collections::VecDeque::new();
            for &(n, kind, li) in ops {
                let node = 1 + (n as usize % 3);
                let li = li as usize % 2;
                let line = lines[li];
                match (states[node][li], kind) {
                    (L1State::I, 0) => wire.push_back((
                        node,
                        CoherenceMsg::Req {
                            kind: ReqType::Sh,
                            line,
                        },
                    )),
                    (L1State::I, 1) => wire.push_back((
                        node,
                        CoherenceMsg::Req {
                            kind: ReqType::Ex,
                            line,
                        },
                    )),
                    (L1State::S, 1) => wire.push_back((
                        node,
                        CoherenceMsg::Req {
                            kind: ReqType::Upg,
                            line,
                        },
                    )),
                    (L1State::S, 2) | (L1State::E, 2) => states[node][li] = L1State::I,
                    (L1State::E, 1) => states[node][li] = L1State::M,
                    (L1State::M, 2) => {
                        states[node][li] = L1State::I;
                        wire.push_back((node, CoherenceMsg::WriteBack { line }));
                    }
                    _ => {} // hits and no-ops
                }
                while let Some((from, msg)) = wire.pop_front() {
                    let outs = d
                        .handle(from, msg)
                        .unwrap_or_else(|e| panic!("directory error: {e}"));
                    for o in outs {
                        let li = lines.iter().position(|&l| {
                            matches!(&o.msg,
                                CoherenceMsg::Inv { line }
                                | CoherenceMsg::Dwg { line }
                                | CoherenceMsg::Data { line, .. }
                                | CoherenceMsg::ExcAck { line }
                                | CoherenceMsg::MemReq { line, .. }
                                | CoherenceMsg::Retry { line } if *line == l)
                        });
                        let Some(li) = li else { continue };
                        let line = lines[li];
                        if o.to == MEM {
                            if let CoherenceMsg::MemReq { write: false, .. } = o.msg {
                                wire.push_back((MEM, CoherenceMsg::MemAck { line }));
                            }
                            continue;
                        }
                        let st = &mut states[o.to][li];
                        match o.msg {
                            CoherenceMsg::Inv { .. } => {
                                let dirty = *st == L1State::M;
                                *st = L1State::I;
                                wire.push_back((
                                    o.to,
                                    CoherenceMsg::InvAck {
                                        line,
                                        with_data: dirty,
                                    },
                                ));
                            }
                            CoherenceMsg::Dwg { .. } => {
                                let dirty = *st == L1State::M;
                                if matches!(*st, L1State::E | L1State::M) {
                                    *st = L1State::S;
                                }
                                wire.push_back((
                                    o.to,
                                    CoherenceMsg::DwgAck {
                                        line,
                                        with_data: dirty,
                                    },
                                ));
                            }
                            CoherenceMsg::Data { grant, .. } => {
                                *st = match grant {
                                    Grant::Shared => L1State::S,
                                    Grant::Exclusive => L1State::E,
                                    Grant::Modified => L1State::M,
                                };
                            }
                            CoherenceMsg::ExcAck { .. } => *st = L1State::M,
                            CoherenceMsg::Retry { .. } => {} // request dropped
                            _ => {}
                        }
                    }
                }
                for (li, &line) in lines.iter().enumerate() {
                    let ds = d.state_of(line);
                    assert!(
                        matches!(
                            ds,
                            DirState::DI | DirState::DV | DirState::DM | DirState::DS
                        ),
                        "{line}: directory not quiescent: {ds:?}"
                    );
                    #[allow(clippy::needless_range_loop)] // node also indexes the directory
                    for node in 1..=3usize {
                        match states[node][li] {
                            L1State::E | L1State::M => {
                                assert_eq!(ds, DirState::DM, "{line}: writable outside DM");
                                assert_eq!(d.owner_of(line), Some(node));
                            }
                            L1State::S => {
                                assert_eq!(ds, DirState::DS, "{line}: S outside DS");
                                assert!(d.sharers_of(line).contains(&node));
                            }
                            _ => {}
                        }
                    }
                }
            }
        },
    );
}
