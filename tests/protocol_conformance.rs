//! Randomized conformance testing of the Table 2 coherence protocol: a
//! small cluster of L1 controllers and directory slices exchange messages
//! over a perfect in-order transport while processors issue random reads,
//! writes and evictions. At quiescence the classic invariants must hold:
//! at most one writable copy per line, owner/sharer lists consistent with
//! the L1s' states, and no protocol-error transition ever taken.
//! (On the in-repo `fsoi-check` harness.)

use fsoi::coherence::directory::Directory;
use fsoi::coherence::l1::L1Controller;
use fsoi::coherence::protocol::{CoherenceMsg, DirState, L1State, LineAddr, OutMsg};
use fsoi_check::{checker, vec_of, Gen};
use std::collections::VecDeque;

const NODES: usize = 4;
const LINES: u64 = 12;
const MEM_NODE: usize = 100;

struct Cluster {
    l1s: Vec<L1Controller>,
    dirs: Vec<Directory>,
    /// In-order message queue: (from, to, msg). A single global FIFO is a
    /// legal (extreme) instance of per-pair ordering.
    wire: VecDeque<(usize, usize, CoherenceMsg)>,
    completions: u64,
}

impl Cluster {
    fn new() -> Self {
        Cluster {
            l1s: (0..NODES)
                .map(|i| {
                    let mut l1 = L1Controller::new(i, 8, 2, 32);
                    l1.set_home_nodes(NODES);
                    l1
                })
                .collect(),
            dirs: (0..NODES)
                .map(|i| Directory::new(i, MEM_NODE, 64))
                .collect(),
            wire: VecDeque::new(),
            completions: 0,
        }
    }

    fn send_all(&mut self, from: usize, outs: Vec<OutMsg>) {
        for o in outs {
            self.wire.push_back((from, o.to, o.msg));
        }
    }

    fn apply(&mut self, op: FuzzOp) {
        match op {
            FuzzOp::Read(n, l) => {
                let a = self.l1s[n].read(LineAddr(l * 32));
                self.send_all(n, a.out);
            }
            FuzzOp::Write(n, l) => {
                let a = self.l1s[n].write(LineAddr(l * 32));
                self.send_all(n, a.out);
            }
            FuzzOp::Evict(n, l) => {
                let outs = self.l1s[n].evict(LineAddr(l * 32));
                self.send_all(n, outs);
            }
        }
    }

    /// Delivers every in-flight message until quiescence.
    fn drain(&mut self) {
        let mut guard = 0;
        while let Some((from, to, msg)) = self.wire.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "message storm must quiesce");
            if to == MEM_NODE {
                // Perfect memory: read requests complete immediately.
                if let CoherenceMsg::MemReq { line, write: false } = msg {
                    let home = (line.0 / 32 % NODES as u64) as usize;
                    self.wire
                        .push_back((MEM_NODE, home, CoherenceMsg::MemAck { line }));
                }
                continue;
            }
            match msg {
                CoherenceMsg::Req { .. }
                | CoherenceMsg::WriteBack { .. }
                | CoherenceMsg::InvAck { .. }
                | CoherenceMsg::DwgAck { .. }
                | CoherenceMsg::MemAck { .. } => {
                    let outs = self.dirs[to]
                        .handle(from, msg)
                        .unwrap_or_else(|e| panic!("directory error: {e}"));
                    self.send_all(to, outs);
                }
                _ => {
                    let r = self.l1s[to]
                        .handle(msg)
                        .unwrap_or_else(|e| panic!("L1 error: {e}"));
                    if r.completed.is_some() {
                        self.completions += 1;
                    }
                    self.send_all(to, r.out);
                }
            }
        }
    }

    fn check_invariants(&self) {
        for l in 0..LINES {
            let line = LineAddr(l * 32);
            let home = (l % NODES as u64) as usize;
            let states: Vec<L1State> = self.l1s.iter().map(|c| c.state_of(line)).collect();
            // Single-writer: at most one M/E copy, and no S beside it.
            let writers = states.iter().filter(|s| s.can_write()).count();
            assert!(writers <= 1, "{line}: two writable copies: {states:?}");
            if writers == 1 {
                let readers = states.iter().filter(|s| **s == L1State::S).count();
                assert_eq!(readers, 0, "{line}: S beside M/E: {states:?}");
            }
            // Directory agreement at quiescence.
            let dir = &self.dirs[home];
            match dir.state_of(line) {
                DirState::DM => {
                    let owner = dir.owner_of(line).expect("DM has an owner");
                    // The owner may have silently dropped a clean E copy,
                    // but nobody else may hold the line writable.
                    for (i, s) in states.iter().enumerate() {
                        if i != owner {
                            assert!(
                                !s.can_write(),
                                "{line}: non-owner {i} writable while dir DM(owner {owner})"
                            );
                        }
                    }
                }
                DirState::DS => {
                    // Every L1 holding the line must be in the sharer list
                    // (the list may over-approximate after silent drops).
                    let sharers = dir.sharers_of(line);
                    for (i, s) in states.iter().enumerate() {
                        if s.can_read() {
                            assert!(
                                sharers.contains(&i),
                                "{line}: node {i} caches {s:?} unseen by directory"
                            );
                            assert!(!s.can_write(), "{line}: writable under DS");
                        }
                    }
                }
                DirState::DV | DirState::DI => {
                    for (i, s) in states.iter().enumerate() {
                        assert_eq!(
                            *s,
                            L1State::I,
                            "{line}: node {i} caches {s:?} but directory says nobody does"
                        );
                    }
                }
                other => panic!("{line}: directory not quiescent: {other:?}"),
            }
        }
        for (i, l1) in self.l1s.iter().enumerate() {
            assert_eq!(l1.outstanding(), 0, "node {i} has dangling MSHRs");
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FuzzOp {
    Read(usize, u64),
    Write(usize, u64),
    Evict(usize, u64),
}

fn op_gen() -> impl Gen<Value = FuzzOp> {
    (0usize..NODES, 0u64..LINES, 0u8..3).gen_map(|&(node, line, kind)| match kind {
        0 => FuzzOp::Read(node, line),
        1 => FuzzOp::Write(node, line),
        _ => FuzzOp::Evict(node, line),
    })
}

/// Random operation sequences, fully drained between operations, never
/// violate coherence.
#[test]
fn random_ops_preserve_coherence() {
    checker!().cases(64).check(
        "random_ops_preserve_coherence",
        vec_of(op_gen(), 1..120),
        |ops| {
            let mut cluster = Cluster::new();
            for &op in ops {
                cluster.apply(op);
                cluster.drain();
            }
            cluster.check_invariants();
        },
    );
}

/// Concurrent bursts: several nodes issue before any message moves,
/// exercising the z-stall queues and the race transitions (upgrade vs
/// invalidation, writeback crossings).
#[test]
fn concurrent_bursts_preserve_coherence() {
    checker!().cases(64).check(
        "concurrent_bursts_preserve_coherence",
        vec_of(vec_of(op_gen(), 1..8), 1..20),
        |rounds| {
            let mut cluster = Cluster::new();
            for round in rounds {
                for &op in round {
                    cluster.apply(op);
                }
                // All the round's requests race through the protocol
                // together.
                cluster.drain();
            }
            cluster.check_invariants();
        },
    );
}

/// Directed regression: the upgrade-vs-invalidation race (S.Mᴬ + Inv →
/// I.Mᴰ, with the directory reinterpreting the stale Upg as Ex) resolves
/// to a single coherent writer.
#[test]
fn upgrade_race_resolves_coherently() {
    let mut cluster = Cluster::new();
    let line = LineAddr(0);
    // Both nodes get the line shared.
    let a = cluster.l1s[0].read(line);
    cluster.send_all(0, a.out);
    cluster.drain();
    let a = cluster.l1s[1].read(line);
    cluster.send_all(1, a.out);
    cluster.drain();
    // Both upgrade simultaneously.
    let a0 = cluster.l1s[0].write(line);
    let a1 = cluster.l1s[1].write(line);
    cluster.send_all(0, a0.out);
    cluster.send_all(1, a1.out);
    cluster.drain();
    cluster.check_invariants();
    // Exactly one winner ended up modified; in this serialized transport
    // the loser's reissued exclusive request also completed, so the final
    // owner holds M and the other is invalid.
    let states: Vec<L1State> = (0..2).map(|i| cluster.l1s[i].state_of(line)).collect();
    assert!(
        states.contains(&L1State::M),
        "someone must own the line: {states:?}"
    );
    assert_eq!(cluster.completions, 4, "two fills + two write grants");
}

/// Permanent named regression: the recorded proptest shrink
/// `rounds = [[Read(1, 8)], [Read(2, 8)], [Write(1, 8), Evict(1, 8)]]` —
/// an S→M upgrade pending in S.Mᴬ while the processor tries to evict the
/// line. The MSHR must pin the line (the eviction is a no-op), the
/// directory's sharer bookkeeping must survive the Upg, and the upgrade
/// must still complete.
#[test]
fn upgrade_vs_evict_shrink_regression() {
    let mut cluster = Cluster::new();
    let line = LineAddr(8 * 32);
    for round in [
        vec![FuzzOp::Read(1, 8)],
        vec![FuzzOp::Read(2, 8)],
        vec![FuzzOp::Write(1, 8), FuzzOp::Evict(1, 8)],
    ] {
        for op in round {
            cluster.apply(op);
        }
        cluster.drain();
    }
    cluster.check_invariants();
    // The upgrade won: node 1 owns the line; the shared copy at node 2
    // was invalidated; the mid-upgrade evict did not strand the MSHR.
    assert_eq!(
        cluster.l1s[1].state_of(line),
        L1State::M,
        "upgrade completes to M"
    );
    assert_eq!(
        cluster.l1s[2].state_of(line),
        L1State::I,
        "old sharer invalidated"
    );
    assert_eq!(cluster.completions, 3, "two fills + one write grant");
}
