//! Request spacing: receiver-side reply-slot reservation (§5.2).
//!
//! Data packets are usually *replies* to earlier requests, so the
//! requester — which will be the reply's receiver — can predict the slot
//! in which the reply most likely lands (Figure 5 shows the latency
//! distribution is heavily concentrated). The requester therefore reserves
//! that incoming data slot; if it is already reserved by an earlier
//! outstanding request, the new request is *delayed* until its predicted
//! reply slot is free, trading a small scheduling delay for a much lower
//! data-collision probability.

use fsoi_sim::Cycle;
use std::collections::BTreeSet;

/// Reservation book for one node's incoming data slots.
#[derive(Debug, Default)]
pub struct ReplySlotReservations {
    /// Reserved slot ids (slot id = slot start cycle / slot length).
    reserved: BTreeSet<u64>,
    /// Total scheduling delay imposed, for the Figure 6 breakdown.
    total_delay: u64,
    /// Number of requests that had to be delayed.
    delayed_requests: u64,
    /// Number of reservations made.
    reservations: u64,
}

/// Outcome of a reservation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// The granted slot's start cycle.
    pub slot_start: Cycle,
    /// Cycles the *request* must be delayed so its reply lands in the
    /// granted slot (zero when the predicted slot was free).
    pub request_delay: u64,
}

impl ReplySlotReservations {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the first free slot at or after the predicted arrival.
    ///
    /// `predicted_arrival` is when the reply would land with no delay;
    /// `slot_len` is the data-lane slot length in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `slot_len == 0`.
    pub fn reserve(&mut self, predicted_arrival: Cycle, slot_len: u64) -> Reservation {
        assert!(slot_len > 0, "slot length must be positive");
        let first_slot = predicted_arrival.as_u64() / slot_len;
        let mut slot = first_slot;
        while self.reserved.contains(&slot) {
            slot += 1;
        }
        self.reserved.insert(slot);
        self.reservations += 1;
        let delay = (slot - first_slot) * slot_len;
        if delay > 0 {
            self.delayed_requests += 1;
            self.total_delay += delay;
        }
        Reservation {
            slot_start: Cycle(slot * slot_len),
            request_delay: delay,
        }
    }

    /// Releases the reservation covering `arrival` (called when the reply
    /// actually lands, or when the transaction aborts).
    pub fn release(&mut self, slot_start: Cycle, slot_len: u64) {
        assert!(slot_len > 0, "slot length must be positive");
        self.reserved.remove(&(slot_start.as_u64() / slot_len));
    }

    /// Drops all reservations older than `now` (replies that never came —
    /// e.g. NACKed transactions — must not pin slots forever).
    pub fn prune_before(&mut self, now: Cycle, slot_len: u64) {
        assert!(slot_len > 0, "slot length must be positive");
        let current = now.as_u64() / slot_len;
        self.reserved = self.reserved.split_off(&current);
    }

    /// Number of live reservations.
    pub fn active(&self) -> usize {
        self.reserved.len()
    }

    /// Total scheduling delay imposed so far, in cycles.
    pub fn total_delay(&self) -> u64 {
        self.total_delay
    }

    /// Number of requests that were delayed.
    pub fn delayed_requests(&self) -> u64 {
        self.delayed_requests
    }

    /// Number of reservations made.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_slot_grants_without_delay() {
        let mut r = ReplySlotReservations::new();
        let g = r.reserve(Cycle(103), 5);
        assert_eq!(g.request_delay, 0);
        assert_eq!(g.slot_start, Cycle(100));
        assert_eq!(r.active(), 1);
    }

    #[test]
    fn conflicting_predictions_cascade() {
        let mut r = ReplySlotReservations::new();
        let a = r.reserve(Cycle(100), 5);
        let b = r.reserve(Cycle(100), 5);
        let c = r.reserve(Cycle(102), 5);
        assert_eq!(a.slot_start, Cycle(100));
        assert_eq!(b.slot_start, Cycle(105));
        assert_eq!(b.request_delay, 5);
        assert_eq!(c.slot_start, Cycle(110));
        assert_eq!(c.request_delay, 10);
        assert_eq!(r.delayed_requests(), 2);
        assert_eq!(r.total_delay(), 15);
        assert_eq!(r.reservations(), 3);
    }

    #[test]
    fn release_frees_slot() {
        let mut r = ReplySlotReservations::new();
        let a = r.reserve(Cycle(50), 5);
        r.release(a.slot_start, 5);
        let b = r.reserve(Cycle(50), 5);
        assert_eq!(b.slot_start, Cycle(50));
        assert_eq!(b.request_delay, 0);
    }

    #[test]
    fn prune_drops_stale() {
        let mut r = ReplySlotReservations::new();
        r.reserve(Cycle(10), 5);
        r.reserve(Cycle(100), 5);
        assert_eq!(r.active(), 2);
        r.prune_before(Cycle(50), 5);
        assert_eq!(r.active(), 1);
        // The surviving slot is the future one.
        let g = r.reserve(Cycle(100), 5);
        assert_eq!(g.slot_start, Cycle(105));
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_len_panics() {
        ReplySlotReservations::new().reserve(Cycle(0), 0);
    }
}
