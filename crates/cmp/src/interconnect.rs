//! The interconnect abstraction the CMP system drives, with adapters for
//! the FSOI network, the electrical mesh, and the idealized L0/Lr1/Lr2
//! configurations.
//!
//! Coherence messages are carried opaquely: the system registers each
//! in-flight message in a table and sends only its index as the packet
//! `tag`; deliveries hand the tag back.

use fsoi_mesh::ideal::{IdealKind, IdealNetwork};
use fsoi_mesh::network::MeshNetwork;
use fsoi_mesh::packet::MeshPacket;
use fsoi_mesh::power::MeshPowerModel;
use fsoi_net::network::FsoiNetwork;
use fsoi_net::packet::{Packet, PacketClass};
use fsoi_net::power::FsoiPowerModel;
use fsoi_net::topology::NodeId;
use fsoi_ring::crossbar::CrossbarNetwork;
use fsoi_ring::network::{RingNetwork, RingPacket};
use fsoi_sim::Cycle;

/// A packet as the CMP system sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPacket {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Meta (72-bit) or data (360-bit).
    pub class: PacketClass,
    /// Opaque tag (message-table index).
    pub tag: u64,
    /// Scheduling delay already applied by request spacing (for latency
    /// attribution).
    pub scheduling_delay: u64,
}

impl NetPacket {
    /// Creates a packet.
    pub fn new(src: usize, dst: usize, class: PacketClass, tag: u64) -> Self {
        NetPacket {
            src,
            dst,
            class,
            tag,
            scheduling_delay: 0,
        }
    }
}

/// A delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDelivery {
    /// The packet.
    pub packet: NetPacket,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Retransmissions the packet suffered (FSOI only; 0 elsewhere).
    pub retries: u32,
}

/// Mean per-packet latency attribution across a run (the Figure 6/7
/// stack).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyAttribution {
    /// Source queuing.
    pub queuing: f64,
    /// Deliberate scheduling (request spacing).
    pub scheduling: f64,
    /// Serialization + flight (or routers + links for the mesh).
    pub network: f64,
    /// Collision resolution (FSOI only).
    pub collision_resolution: f64,
}

impl LatencyAttribution {
    /// Total mean latency.
    pub fn total(&self) -> f64 {
        self.queuing + self.scheduling + self.network + self.collision_resolution
    }
}

/// The driving interface every network variant implements.
///
/// `Send + Sync` is a supertrait so that an unrun [`crate::system::CmpSystem`]
/// template (which owns a `Box<dyn Interconnect>`) can be shared by
/// reference across sweep worker threads and forked per cell; every
/// adapter is plain owned data, so the bounds are free.
pub trait Interconnect: std::fmt::Debug + Send + Sync {
    /// Injects a packet; `Err` hands it back on queue overflow.
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket>;
    /// Advances one cycle.
    fn tick(&mut self);
    /// Takes deliveries since the last drain.
    fn drain(&mut self) -> Vec<NetDelivery>;
    /// Current network time.
    fn now(&self) -> Cycle;
    /// True when nothing is queued or in flight.
    fn is_idle(&self) -> bool;
    /// Mean latency attribution so far.
    fn attribution(&self) -> LatencyAttribution;
    /// Network energy consumed over `cycles`, joules.
    fn energy_j(&mut self, cycles: u64) -> f64;
    /// Short human-readable name ("fsoi", "mesh", "L0"…).
    fn name(&self) -> &'static str;

    /// The earliest cycle `>= now()` at which the network could do any
    /// work on its own — deliver, resolve a slot, drain a confirmation,
    /// start a transmission. `Some(Cycle(u64::MAX))` means "never without
    /// a new injection"; `None` means "unknown — drive me cycle by
    /// cycle". The default is the conservative pair: unknown while busy,
    /// never while idle.
    fn next_event_at(&self) -> Option<Cycle> {
        if self.is_idle() {
            Some(Cycle(u64::MAX))
        } else {
            None
        }
    }
    /// Advances the network to `target`, processing internal events at
    /// their exact cycles. The default ticks cycle by cycle; event-driven
    /// networks override it with a fast-forwarding implementation.
    fn advance_to(&mut self, target: Cycle) {
        while self.now() < target {
            self.tick();
        }
    }

    /// Registers that `dst` expects a data reply from `src` (FSOI hint
    /// optimization); default no-op.
    fn expect_data(&mut self, _dst: usize, _src: usize) {}
    /// Clears an expectation; default no-op.
    fn clear_expected(&mut self, _dst: usize, _src: usize) {}
    /// Reserves the reply slot predicted at `predicted_arrival` for
    /// `node`; returns the request delay in cycles (FSOI request spacing);
    /// default 0.
    fn reserve_reply_slot(&mut self, _node: usize, _predicted_arrival: Cycle) -> u64 {
        0
    }
    /// True when the network's confirmation channel can substitute for
    /// explicit acknowledgment packets (§5.1); default false.
    fn supports_confirmation_acks(&self) -> bool {
        false
    }
    /// Fraction of transmissions that collided on a lane (0 = meta,
    /// 1 = data); 0.0 for collision-free networks.
    fn collision_rate(&self, _lane: usize) -> f64 {
        0.0
    }
    /// First-transmission probability per node per slot on a lane; 0.0
    /// where the concept does not apply.
    fn tx_probability(&self, _lane: usize) -> f64 {
        0.0
    }
    /// Data-lane hint statistics `(issued, correct, wrong)`.
    fn hint_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
    /// Mean collision-resolution delay of collided data packets, cycles.
    fn data_resolution_delay(&self) -> f64 {
        0.0
    }
    /// Packets dropped by raw bit errors and recovered by retransmission
    /// (FSOI only).
    fn bit_error_drops(&self) -> u64 {
        0
    }
}

/// FSOI adapter.
#[derive(Debug)]
pub struct FsoiAdapter {
    net: FsoiNetwork,
    power: FsoiPowerModel,
    delivered_bits: u64,
}

impl FsoiAdapter {
    /// Wraps an FSOI network with the paper's power model.
    pub fn new(net: FsoiNetwork) -> Self {
        FsoiAdapter {
            net,
            power: FsoiPowerModel::paper_default(),
            delivered_bits: 0,
        }
    }

    /// The wrapped network (for stats inspection).
    pub fn network(&self) -> &FsoiNetwork {
        &self.net
    }

    /// Mutable access to the wrapped network.
    pub fn network_mut(&mut self) -> &mut FsoiNetwork {
        &mut self.net
    }

    /// Total payload bits delivered so far.
    pub fn delivered_bits(&self) -> u64 {
        self.delivered_bits
    }
}

impl Interconnect for FsoiAdapter {
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket> {
        let p = Packet::new(
            NodeId(packet.src),
            NodeId(packet.dst),
            packet.class,
            packet.tag,
        )
        .with_scheduling_delay(packet.scheduling_delay);
        self.net.inject(p).map(|_| ()).map_err(|_| packet)
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn drain(&mut self) -> Vec<NetDelivery> {
        self.net
            .drain_delivered()
            .into_iter()
            .map(|d| {
                self.delivered_bits += match d.packet.class {
                    PacketClass::Meta => 72,
                    PacketClass::Data => 360,
                };
                NetDelivery {
                    packet: NetPacket {
                        src: d.packet.src.0,
                        dst: d.packet.dst.0,
                        class: d.packet.class,
                        tag: d.packet.tag,
                        scheduling_delay: d.packet.scheduling_delay,
                    },
                    latency: d.breakdown.total(),
                    retries: d.packet.retries,
                }
            })
            .collect()
    }

    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn is_idle(&self) -> bool {
        self.net.is_idle()
    }

    fn attribution(&self) -> LatencyAttribution {
        let s = self.net.stats();
        let weight = |lane: usize| s.latency[lane].count() as f64;
        let total = weight(0) + weight(1);
        if total == 0.0 {
            return LatencyAttribution::default();
        }
        let mix = |a: f64, b: f64| (a * weight(0) + b * weight(1)) / total;
        LatencyAttribution {
            queuing: mix(s.queuing[0].mean(), s.queuing[1].mean()),
            scheduling: mix(s.scheduling[0].mean(), s.scheduling[1].mean()),
            network: mix(s.network[0].mean(), s.network[1].mean()),
            collision_resolution: mix(s.resolution[0].mean(), s.resolution[1].mean()),
        }
    }

    fn energy_j(&mut self, cycles: u64) -> f64 {
        let lanes = self.net.config().lanes;
        let nodes = self.net.config().nodes;
        let conf = self.net.confirmations_sent();
        self.power
            .network_energy(self.net.stats(), &lanes, nodes, cycles, conf)
            .total_j()
    }

    fn name(&self) -> &'static str {
        "fsoi"
    }

    fn next_event_at(&self) -> Option<Cycle> {
        Some(self.net.next_event_at().unwrap_or(Cycle(u64::MAX)))
    }

    fn advance_to(&mut self, target: Cycle) {
        self.net.advance_to(target);
    }

    fn expect_data(&mut self, dst: usize, src: usize) {
        self.net.expect_data(NodeId(dst), NodeId(src));
    }

    fn clear_expected(&mut self, dst: usize, src: usize) {
        self.net.clear_expected(NodeId(dst), NodeId(src));
    }

    fn reserve_reply_slot(&mut self, node: usize, predicted_arrival: Cycle) -> u64 {
        if !self.net.config().request_spacing {
            return 0;
        }
        let slot = self.net.data_slot_len();
        self.net
            .reservations_mut(NodeId(node))
            .reserve(predicted_arrival, slot)
            .request_delay
    }

    fn supports_confirmation_acks(&self) -> bool {
        true
    }

    fn collision_rate(&self, lane: usize) -> f64 {
        self.net.stats().collision_rate(lane)
    }

    fn tx_probability(&self, lane: usize) -> f64 {
        let class = if lane == 0 {
            PacketClass::Meta
        } else {
            PacketClass::Data
        };
        let slots = self.net.slots_elapsed(class);
        let nodes = self.net.config().nodes;
        // First transmissions only: attempts minus retransmissions.
        let s = self.net.stats();
        let first = s.transmissions[lane].saturating_sub(s.retransmissions[lane]);
        if slots == 0 {
            0.0
        } else {
            first as f64 / (nodes as f64 * slots as f64)
        }
    }

    fn hint_stats(&self) -> (u64, u64, u64) {
        let s = self.net.stats();
        (s.hints_issued, s.hints_correct, s.hints_wrong)
    }

    fn data_resolution_delay(&self) -> f64 {
        self.net.stats().resolution_when_collided[1].mean()
    }

    fn bit_error_drops(&self) -> u64 {
        let s = self.net.stats();
        s.bit_error_drops[0] + s.bit_error_drops[1]
    }
}

/// Mesh adapter.
#[derive(Debug)]
pub struct MeshAdapter {
    net: MeshNetwork,
    power: MeshPowerModel,
    /// Mean queuing share estimated from injection occupancy (the mesh
    /// does not attribute internally; we report everything as network).
    injected: u64,
    /// Link-width scale: packets serialize into `ceil(flits / scale)`
    /// flits, modelling narrowed links for the Figure 11 sweep.
    width_fraction: f64,
}

impl MeshAdapter {
    /// Wraps a mesh with the Orion-style power model.
    pub fn new(net: MeshNetwork) -> Self {
        MeshAdapter {
            net,
            power: MeshPowerModel::paper_default(),
            injected: 0,
            width_fraction: 1.0,
        }
    }

    /// Narrows the links to `fraction` of their baseline width (packets
    /// carry proportionally more flits). Used by the Figure 11 bandwidth
    /// sensitivity sweep.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn with_width_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        self.width_fraction = fraction;
        self
    }

    /// The wrapped network.
    pub fn network(&self) -> &MeshNetwork {
        &self.net
    }

    /// Packets offered to the mesh so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl Interconnect for MeshAdapter {
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket> {
        let mut p = match packet.class {
            PacketClass::Meta => MeshPacket::meta(packet.src, packet.dst, packet.tag),
            PacketClass::Data => MeshPacket::data(packet.src, packet.dst, packet.tag),
        };
        p.flits = ((p.flits as f64) / self.width_fraction).ceil() as usize;
        self.injected += 1;
        self.net.inject(p).map(|_| ()).map_err(|_| packet)
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn drain(&mut self) -> Vec<NetDelivery> {
        self.net
            .drain_delivered()
            .into_iter()
            .map(|d| NetDelivery {
                packet: NetPacket {
                    src: d.packet.src,
                    dst: d.packet.dst,
                    class: if d.packet.is_meta() {
                        PacketClass::Meta
                    } else {
                        PacketClass::Data
                    },
                    tag: d.packet.tag,
                    scheduling_delay: 0,
                },
                latency: d.latency(),
                retries: 0,
            })
            .collect()
    }

    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn is_idle(&self) -> bool {
        self.net.is_idle()
    }

    fn attribution(&self) -> LatencyAttribution {
        LatencyAttribution {
            queuing: 0.0,
            scheduling: 0.0,
            network: self.net.stats().latency.mean(),
            collision_resolution: 0.0,
        }
    }

    fn energy_j(&mut self, cycles: u64) -> f64 {
        self.net.harvest_power_counters();
        let routers = self.net.config().node_count();
        self.power.energy_j(self.net.stats(), routers, cycles)
    }

    fn name(&self) -> &'static str {
        "mesh"
    }
}

/// Ideal-network adapter (L0/Lr1/Lr2).
#[derive(Debug)]
pub struct IdealAdapter {
    net: IdealNetwork,
    kind: IdealKind,
}

impl IdealAdapter {
    /// Wraps an ideal model.
    pub fn new(kind: IdealKind, width: usize) -> Self {
        IdealAdapter {
            net: IdealNetwork::new(kind, width),
            kind,
        }
    }
}

impl Interconnect for IdealAdapter {
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket> {
        let p = match packet.class {
            PacketClass::Meta => MeshPacket::meta(packet.src, packet.dst, packet.tag),
            PacketClass::Data => MeshPacket::data(packet.src, packet.dst, packet.tag),
        };
        self.net.inject(p);
        Ok(())
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn drain(&mut self) -> Vec<NetDelivery> {
        self.net
            .drain_delivered()
            .into_iter()
            .map(|d| NetDelivery {
                packet: NetPacket {
                    src: d.packet.src,
                    dst: d.packet.dst,
                    class: if d.packet.is_meta() {
                        PacketClass::Meta
                    } else {
                        PacketClass::Data
                    },
                    tag: d.packet.tag,
                    scheduling_delay: 0,
                },
                latency: d.latency(),
                retries: 0,
            })
            .collect()
    }

    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn is_idle(&self) -> bool {
        self.net.is_idle()
    }

    fn attribution(&self) -> LatencyAttribution {
        LatencyAttribution {
            network: self.net.latency().mean(),
            ..Default::default()
        }
    }

    fn energy_j(&mut self, _cycles: u64) -> f64 {
        0.0 // idealized: no energy model
    }

    fn name(&self) -> &'static str {
        match self.kind {
            IdealKind::L0 => "L0",
            IdealKind::Lr1 => "Lr1",
            IdealKind::Lr2 => "Lr2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsoi_mesh::config::MeshConfig;
    use fsoi_net::config::FsoiConfig;

    fn deliver_one(net: &mut dyn Interconnect, p: NetPacket) -> NetDelivery {
        net.inject(p).unwrap();
        for _ in 0..2_000 {
            net.tick();
            let out = net.drain();
            if !out.is_empty() {
                return out[0];
            }
        }
        panic!("packet never delivered on {}", net.name());
    }

    #[test]
    fn all_adapters_deliver() {
        let mut nets: Vec<Box<dyn Interconnect>> = vec![
            Box::new(FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1))),
            Box::new(MeshAdapter::new(MeshNetwork::new(MeshConfig::nodes(16)))),
            Box::new(IdealAdapter::new(IdealKind::L0, 4)),
            Box::new(IdealAdapter::new(IdealKind::Lr1, 4)),
            Box::new(IdealAdapter::new(IdealKind::Lr2, 4)),
        ];
        for net in &mut nets {
            let d = deliver_one(net.as_mut(), NetPacket::new(0, 9, PacketClass::Data, 42));
            assert_eq!(d.packet.dst, 9);
            assert_eq!(d.packet.tag, 42);
            assert!(d.latency > 0);
            assert!(net.is_idle());
        }
    }

    #[test]
    fn latency_ordering_l0_fsoi_mesh() {
        let lat = |net: &mut dyn Interconnect| {
            deliver_one(net, NetPacket::new(0, 15, PacketClass::Data, 0)).latency
        };
        let mut l0 = IdealAdapter::new(IdealKind::L0, 4);
        let mut fsoi = FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1));
        let mut mesh = MeshAdapter::new(MeshNetwork::new(MeshConfig::nodes(16)));
        let (a, b, c) = (lat(&mut l0), lat(&mut fsoi), lat(&mut mesh));
        assert!(a <= b, "L0 {a} <= FSOI {b}");
        assert!(b < c, "FSOI {b} < mesh {c}");
    }

    #[test]
    fn fsoi_attribution_sums_to_latency() {
        let mut fsoi = FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1));
        let d = deliver_one(&mut fsoi, NetPacket::new(2, 11, PacketClass::Meta, 0));
        let a = fsoi.attribution();
        assert!((a.total() - d.latency as f64).abs() < 1e-9);
    }

    #[test]
    fn energy_hooks_produce_values() {
        let mut fsoi = FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1));
        deliver_one(&mut fsoi, NetPacket::new(0, 5, PacketClass::Data, 0));
        assert!(fsoi.energy_j(100) > 0.0);
        let mut mesh = MeshAdapter::new(MeshNetwork::new(MeshConfig::nodes(16)));
        deliver_one(&mut mesh, NetPacket::new(0, 5, PacketClass::Data, 0));
        assert!(mesh.energy_j(100) > 0.0);
        let mut l0 = IdealAdapter::new(IdealKind::L0, 4);
        assert_eq!(l0.energy_j(100), 0.0);
    }

    #[test]
    fn fsoi_supports_optimizations() {
        let mut fsoi = FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1));
        assert!(fsoi.supports_confirmation_acks());
        fsoi.expect_data(3, 7);
        fsoi.clear_expected(3, 7);
        let d1 = fsoi.reserve_reply_slot(3, Cycle(100));
        let d2 = fsoi.reserve_reply_slot(3, Cycle(100));
        assert_eq!(d1, 0);
        assert!(d2 > 0, "second reservation of the same slot must shift");
        let mut mesh = MeshAdapter::new(MeshNetwork::new(MeshConfig::nodes(16)));
        assert!(!mesh.supports_confirmation_acks());
        assert_eq!(mesh.reserve_reply_slot(3, Cycle(100)), 0);
    }

    #[test]
    fn names() {
        assert_eq!(
            FsoiAdapter::new(FsoiNetwork::new(FsoiConfig::nodes(16), 1)).name(),
            "fsoi"
        );
        assert_eq!(IdealAdapter::new(IdealKind::Lr2, 4).name(), "Lr2");
        assert_eq!(
            MeshAdapter::new(MeshNetwork::new(MeshConfig::nodes(16))).name(),
            "mesh"
        );
    }
}

/// Corona-style ring-crossbar adapter (the paper's §7.1 nanophotonic
/// comparison point).
#[derive(Debug)]
pub struct RingAdapter {
    net: RingNetwork,
}

impl RingAdapter {
    /// Wraps a ring crossbar.
    pub fn new(net: RingNetwork) -> Self {
        RingAdapter { net }
    }

    /// The wrapped network.
    pub fn network(&self) -> &RingNetwork {
        &self.net
    }
}

impl Interconnect for RingAdapter {
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket> {
        let p = match packet.class {
            PacketClass::Meta => RingPacket::meta(packet.src, packet.dst, packet.tag),
            PacketClass::Data => RingPacket::data(packet.src, packet.dst, packet.tag),
        };
        self.net.inject(p).map(|_| ()).map_err(|_| packet)
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn drain(&mut self) -> Vec<NetDelivery> {
        self.net
            .drain_delivered()
            .into_iter()
            .map(|d| NetDelivery {
                packet: NetPacket {
                    src: d.packet.src,
                    dst: d.packet.dst,
                    class: if d.packet.is_data {
                        PacketClass::Data
                    } else {
                        PacketClass::Meta
                    },
                    tag: d.packet.tag,
                    scheduling_delay: 0,
                },
                latency: d.latency(),
                retries: 0,
            })
            .collect()
    }

    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn is_idle(&self) -> bool {
        self.net.is_idle()
    }

    fn attribution(&self) -> LatencyAttribution {
        LatencyAttribution {
            queuing: self.net.stats().token_wait.mean(),
            network: self.net.stats().latency.mean() - self.net.stats().token_wait.mean(),
            ..Default::default()
        }
    }

    fn energy_j(&mut self, cycles: u64) -> f64 {
        // Dominated by the always-on ring tuning + modulator static power.
        self.net.static_power_w() * cycles as f64 / 3.3e9
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// Worst-case-loss matrix-crossbar adapter (the PAPERS.md comparative
/// study's baseline for the design-space grids).
#[derive(Debug)]
pub struct CrossbarAdapter {
    net: CrossbarNetwork,
}

impl CrossbarAdapter {
    /// Wraps a matrix crossbar.
    pub fn new(net: CrossbarNetwork) -> Self {
        CrossbarAdapter { net }
    }

    /// The wrapped network.
    pub fn network(&self) -> &CrossbarNetwork {
        &self.net
    }
}

impl Interconnect for CrossbarAdapter {
    fn inject(&mut self, packet: NetPacket) -> Result<(), NetPacket> {
        let p = match packet.class {
            PacketClass::Meta => RingPacket::meta(packet.src, packet.dst, packet.tag),
            PacketClass::Data => RingPacket::data(packet.src, packet.dst, packet.tag),
        };
        self.net.inject(p).map(|_| ()).map_err(|_| packet)
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn drain(&mut self) -> Vec<NetDelivery> {
        self.net
            .drain_delivered()
            .into_iter()
            .map(|d| NetDelivery {
                packet: NetPacket {
                    src: d.packet.src,
                    dst: d.packet.dst,
                    class: if d.packet.is_data {
                        PacketClass::Data
                    } else {
                        PacketClass::Meta
                    },
                    tag: d.packet.tag,
                    scheduling_delay: 0,
                },
                latency: d.latency(),
                retries: 0,
            })
            .collect()
    }

    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn is_idle(&self) -> bool {
        self.net.is_idle()
    }

    fn attribution(&self) -> LatencyAttribution {
        LatencyAttribution {
            queuing: self.net.stats().port_wait.mean(),
            network: self.net.stats().latency.mean() - self.net.stats().port_wait.mean(),
            ..Default::default()
        }
    }

    fn energy_j(&mut self, cycles: u64) -> f64 {
        // Dominated by the worst-case-loss-sized per-port lasers (always
        // on: CW sources behind modulators) plus the receivers.
        self.net.static_power_w() * cycles as f64 / 3.3e9
    }

    fn name(&self) -> &'static str {
        "crossbar"
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use fsoi_ring::config::RingConfig;
    use fsoi_ring::crossbar::CrossbarConfig;

    #[test]
    fn ring_adapter_delivers() {
        let mut net = RingAdapter::new(RingNetwork::new(RingConfig::nodes(64)));
        net.inject(NetPacket::new(0, 40, PacketClass::Data, 5))
            .unwrap();
        for _ in 0..50 {
            net.tick();
        }
        let out = net.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.tag, 5);
        assert!(net.is_idle());
        assert!(net.energy_j(1000) > 0.0);
        assert_eq!(net.name(), "ring");
    }

    #[test]
    fn crossbar_adapter_delivers() {
        let mut net = CrossbarAdapter::new(CrossbarNetwork::new(CrossbarConfig::nodes(64)));
        net.inject(NetPacket::new(0, 40, PacketClass::Data, 5))
            .unwrap();
        for _ in 0..50 {
            net.tick();
        }
        let out = net.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.tag, 5);
        assert!(net.is_idle());
        assert!(net.energy_j(1000) > 0.0);
        assert_eq!(net.name(), "crossbar");
    }

    #[test]
    fn crossbar_scales_to_256_nodes() {
        let mut net = CrossbarAdapter::new(CrossbarNetwork::new(CrossbarConfig::nodes(256)));
        net.inject(NetPacket::new(3, 255, PacketClass::Meta, 9))
            .unwrap();
        for _ in 0..50 {
            net.tick();
        }
        let out = net.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.dst, 255);
        // 256-port lasers are sized for ~48 dB more worst-case loss than
        // 64-port ones; the energy model must reflect that.
        let mut small = CrossbarAdapter::new(CrossbarNetwork::new(CrossbarConfig::nodes(64)));
        assert!(net.energy_j(1000) > small.energy_j(1000) * 100.0);
    }
}
