//! Batch entry points: run many (config, app) cells through the
//! deterministic parallel executor and merge their reports.
//!
//! A sweep *cell* is one fully-specified simulation: a [`SystemConfig`]
//! (which carries the network kind and the run seed) plus an
//! [`AppProfile`]. Cells share nothing — each [`run_batch`] closure call
//! constructs its own [`CmpSystem`], whose RNG streams derive from the
//! cell's own `cfg.seed` and whose statistics live in per-run state —
//! so they can execute on any number of threads.
//!
//! Determinism is preserved end-to-end:
//!
//! 1. [`fsoi_sim::par::sweep`] returns reports **indexed by cell**, not
//!    by completion order;
//! 2. [`merge_reports`] folds `RunReport::export` into one
//!    [`Registry`] in that same index order;
//! 3. `Registry` itself renders in sorted key order.
//!
//! The merged JSONL/table bytes are therefore identical to a serial
//! fold for any thread count (property-tested in
//! `crates/bench/tests/par_merge.rs`).

use crate::cache::CellCache;
use crate::configs::SystemConfig;
use crate::metrics::RunReport;
use crate::system::CmpSystem;
use crate::workload::AppProfile;
use fsoi_sim::det::DetMap;
use fsoi_sim::metrics::Registry;
use fsoi_sim::par;
use fsoi_sim::profile::Profile;
use fsoi_sim::telemetry::{self, Phase};

/// One sweep cell: a complete system configuration plus a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCell {
    /// Full system configuration (network, seed, bandwidth, opts).
    pub config: SystemConfig,
    /// The application to run (with `ops_per_core` already set).
    pub app: AppProfile,
}

impl BatchCell {
    /// Builds a cell.
    pub fn new(config: SystemConfig, app: AppProfile) -> Self {
        BatchCell { config, app }
    }

    /// Runs this cell to completion in an isolated simulator, consulting
    /// the content-addressed cell cache first when the `FSOI_CACHE` knob
    /// enables one. A hit is byte-identical to the cold run it replaces
    /// (see [`CellCache`]).
    pub fn run(&self, max_cycles: u64) -> RunReport {
        run_via_cache(self, max_cycles, || self.run_cold(max_cycles))
    }

    /// Runs this cell unconditionally — fresh system, no cache.
    pub fn run_cold(&self, max_cycles: u64) -> RunReport {
        let mut sys = {
            let _build = telemetry::span(Phase::Build);
            CmpSystem::new(self.config.clone(), self.app)
        };
        let _sim = telemetry::span(Phase::Sim);
        sys.run(max_cycles)
    }
}

/// Routes one cell run through the env-configured cache when enabled.
fn run_via_cache(cell: &BatchCell, max_cycles: u64, cold: impl FnOnce() -> RunReport) -> RunReport {
    match CellCache::from_env() {
        Some(cache) => cache.run_or(&cell.config, &cell.app, max_cycles, cold),
        None => cold(),
    }
}

/// Runs every cell on up to `threads` worker threads and returns the
/// reports in cell order — byte-for-byte the same vector a serial loop
/// would produce, for any `threads` (see [`fsoi_sim::par::sweep`]).
pub fn run_batch(cells: &[BatchCell], threads: usize, max_cycles: u64) -> Vec<RunReport> {
    par::sweep(cells.len(), threads, |i| cells[i].run(max_cycles))
}

/// [`run_batch`] with the default [`fsoi_sim::par::thread_count`]
/// (the `FSOI_THREADS` knob, else available parallelism).
pub fn run_batch_auto(cells: &[BatchCell], max_cycles: u64) -> Vec<RunReport> {
    run_batch(cells, par::thread_count(), max_cycles)
}

/// Like [`run_batch`], but amortizes seed-independent construction work:
/// cells that differ **only by seed** share one unrun template
/// [`CmpSystem`] — the preloaded distributed-L2 directories, L1 arrays
/// and memory map are built once — which is then
/// [forked](CmpSystem::fork) per cell inside the sweep. Groups with a
/// single member skip the template and run cold, so sweeps with no seed
/// variants pay only the (cheap) grouping pass.
///
/// Output is byte-identical to [`run_batch`] for any thread count:
/// forking an unrun template reproduces cold construction exactly (see
/// [`CmpSystem::fork`]; pinned by `crates/bench/tests/par_merge.rs`).
/// The `FSOI_CACHE` cell cache, when enabled, is consulted before
/// forking just as [`BatchCell::run`] does before constructing.
pub fn run_batch_forked(cells: &[BatchCell], threads: usize, max_cycles: u64) -> Vec<RunReport> {
    run_batch_forked_profiled(cells, threads, max_cycles).0
}

/// [`run_batch_forked`] plus the harness-side deterministic profile:
/// how the batch was decomposed (cells total, forked vs cold, group and
/// template counts). The decomposition is a pure function of the cell
/// list — never of thread count or cache state — so the returned
/// [`Profile`] is byte-identical across `threads` and belongs in the
/// deterministic observability plane.
pub fn run_batch_forked_profiled(
    cells: &[BatchCell],
    threads: usize,
    max_cycles: u64,
) -> (Vec<RunReport>, Profile) {
    // Group by everything except the seed. The `Debug` rendering covers
    // every field of the config (including the nested network config)
    // and the app, so equal keys imply fork-compatible cells.
    let mut groups: DetMap<String, Vec<usize>> = DetMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let key = format!("{:?}|{:?}", cell.config.clone().with_seed(0), cell.app);
        groups.entry(key).or_default().push(i);
    }
    let mut template_of: Vec<Option<usize>> = vec![None; cells.len()];
    let mut templates: Vec<CmpSystem> = Vec::new();
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let first = &cells[members[0]];
        let template = {
            let _build = telemetry::span(Phase::Build);
            CmpSystem::new(first.config.clone(), first.app)
        };
        templates.push(template);
        for &i in members {
            template_of[i] = Some(templates.len() - 1);
        }
    }
    let forked = template_of.iter().filter(|t| t.is_some()).count() as u64;
    let mut harness = Profile::new();
    harness.add("batch/cells", cells.len() as u64);
    harness.add("batch/cells_forked", forked);
    harness.add("batch/cells_cold", cells.len() as u64 - forked);
    harness.add("batch/groups", groups.len() as u64);
    harness.add("batch/templates", templates.len() as u64);
    let templates = &templates;
    let template_of = &template_of;
    let reports = par::sweep(cells.len(), threads, move |i| {
        let cell = &cells[i];
        match template_of[i] {
            Some(t) => run_via_cache(cell, max_cycles, || {
                let mut sys = {
                    let _build = telemetry::span(Phase::Build);
                    templates[t].fork(cell.config.seed)
                };
                let _sim = telemetry::span(Phase::Sim);
                sys.run(max_cycles)
            }),
            None => cell.run(max_cycles),
        }
    });
    (reports, harness)
}

/// Folds reports into one registry in slice order — the deterministic
/// reduction behind merged sweep exports.
pub fn merge_reports(reports: &[RunReport]) -> Registry {
    let _merge = telemetry::span(Phase::Merge);
    let mut reg = Registry::new();
    for r in reports {
        r.export(&mut reg);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::NetworkKind;

    fn tiny_cells() -> Vec<BatchCell> {
        let mut cells = Vec::new();
        for (ci, name) in ["tsp", "mp", "fft"].iter().enumerate() {
            let mut app = AppProfile::by_name(name).expect("suite app");
            app.ops_per_core = 40;
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16))
                .with_seed(2010 + par::derive_seed(2010, ci as u64) % 1000);
            cells.push(BatchCell::new(cfg, app));
        }
        cells
    }

    #[test]
    fn parallel_batch_matches_serial_fold() {
        let cells = tiny_cells();
        let serial = run_batch(&cells, 1, 1_000_000);
        let serial_bytes = merge_reports(&serial).to_jsonl();
        for threads in [2, 8] {
            let par_reports = run_batch(&cells, threads, 1_000_000);
            assert_eq!(
                merge_reports(&par_reports).to_jsonl(),
                serial_bytes,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn forked_batch_matches_cold_batch_bytes() {
        // Three seed variants of the same (config, app) share a template
        // (forked path) plus one odd cell that stays a singleton (cold
        // path inside run_batch_forked).
        let mut cells = Vec::new();
        let mut app = AppProfile::by_name("mp").expect("suite app");
        app.ops_per_core = 40;
        for seed in [11, 12, 13] {
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_seed(seed);
            cells.push(BatchCell::new(cfg, app));
        }
        cells.extend(tiny_cells().into_iter().take(1));
        let cold = run_batch(&cells, 1, 1_000_000);
        let cold_bytes = merge_reports(&cold).to_jsonl();
        for threads in [1, 2, 8] {
            let forked = run_batch_forked(&cells, threads, 1_000_000);
            assert_eq!(
                merge_reports(&forked).to_jsonl(),
                cold_bytes,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fork_of_unrun_template_equals_cold_construction() {
        let cell = tiny_cells().remove(0);
        let template = CmpSystem::new(cell.config.clone().with_seed(999), cell.app);
        let forked = template.fork(cell.config.seed).run(1_000_000);
        let cold = cell.run_cold(1_000_000);
        assert_eq!(forked.registry().to_jsonl(), cold.registry().to_jsonl());
        assert_eq!(forked.to_wire(), cold.to_wire());
    }

    #[test]
    #[should_panic(expected = "unrun template")]
    fn fork_of_a_run_system_panics() {
        let cell = tiny_cells().remove(0);
        let mut sys = CmpSystem::new(cell.config, cell.app);
        let _ = sys.run(1_000_000);
        let _ = sys.fork(1);
    }

    #[test]
    fn profiled_batch_reports_the_decomposition() {
        // Same shape as `forked_batch_matches_cold_batch_bytes`: three
        // seed variants share one template, one singleton stays cold.
        let mut cells = Vec::new();
        let mut app = AppProfile::by_name("mp").expect("suite app");
        app.ops_per_core = 40;
        for seed in [11, 12, 13] {
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_seed(seed);
            cells.push(BatchCell::new(cfg, app));
        }
        cells.extend(tiny_cells().into_iter().take(1));
        let (reports, harness) = run_batch_forked_profiled(&cells, 2, 1_000_000);
        assert_eq!(reports.len(), 4);
        assert_eq!(harness.get("batch/cells"), 4);
        assert_eq!(harness.get("batch/cells_forked"), 3);
        assert_eq!(harness.get("batch/cells_cold"), 1);
        assert_eq!(harness.get("batch/groups"), 2);
        assert_eq!(harness.get("batch/templates"), 1);
        // The decomposition never depends on thread count.
        let (_, serial) = run_batch_forked_profiled(&cells, 1, 1_000_000);
        assert_eq!(serial, harness);
        // Per-cell sim profiles ride inside the reports.
        assert!(reports[0].profile.get("sim/cycles") > 0);
        assert!(reports[0].profile.get("sim/ticks") > 0);
    }

    #[test]
    fn empty_batch_merges_to_empty_registry() {
        let reports = run_batch(&[], 8, 1_000);
        assert!(reports.is_empty());
        assert_eq!(merge_reports(&reports).to_jsonl(), "");
    }
}
