//! The L2 directory controller — lower half of Table 2.
//!
//! Each node hosts one slice of the distributed shared L2 plus its
//! directory. Stable states: `DI` (not resident, memory holds it), `DV`
//! (resident, no L1 copies), `DS` (shared by L1s), `DM` (owned by one L1).
//! The nine transient states cover memory fetches, invalidation rounds,
//! downgrades and ownership transfers, including the crossing-writeback
//! races (`DM.DSᴰ` + WriteBack → `DM.DSᴬ`, etc.).
//!
//! Requests arriving while a line is transient are *stalled* (Table 2's
//! `z`) into a per-line deferred queue and replayed once the line
//! stabilizes; a deferred `Req(Upg)` whose requester lost its copy in the
//! meantime is reinterpreted as `Req(Ex)` (the table's "(Req(Ex))" note).
//! When the deferred queue is full the directory NACKs with `Retry`,
//! which probabilistically avoids fetch deadlock (§4.3.1, footnote 3).

use crate::protocol::{CoherenceMsg, DirState, Grant, LineAddr, OutMsg, ProtocolError, ReqType};
use fsoi_sim::det::{DetMap, NodeMask, NodeMaskIter};
use fsoi_sim::trace::{self, TraceEvent};
use fsoi_sim::Cycle;
use std::collections::VecDeque;

/// Directory statistics.
#[derive(Debug, Default, Clone)]
pub struct DirStats {
    /// Requests processed (including replays).
    pub requests: u64,
    /// Data replies sent.
    pub data_replies: u64,
    /// ExcAcks sent (upgrade grants).
    pub exc_acks: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Downgrades sent.
    pub downgrades: u64,
    /// Retry NACKs sent.
    pub nacks: u64,
    /// Upgrade requests reinterpreted as exclusive.
    pub reinterpreted: u64,
    /// Memory reads issued.
    pub mem_reads: u64,
    /// Memory writebacks issued.
    pub mem_writes: u64,
    /// Requests stalled into deferred queues.
    pub deferred: u64,
    /// L2 capacity evictions performed.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct DirEntry {
    state: DirState,
    owner: usize,
    sharers: NodeMask,
    acks_pending: u32,
    requester: usize,
    deferred: VecDeque<(usize, ReqType)>,
    lru: u64,
}

impl DirEntry {
    fn new(state: DirState, lru: u64) -> Self {
        DirEntry {
            state,
            owner: usize::MAX,
            sharers: NodeMask::new(),
            acks_pending: 0,
            requester: usize::MAX,
            deferred: VecDeque::new(),
            lru,
        }
    }

    fn sharer_list(&self) -> Vec<usize> {
        self.sharer_iter().collect()
    }

    /// Number of sharers, straight off the bit mask (no allocation).
    fn sharer_count(&self) -> usize {
        self.sharers.len()
    }

    /// Iterates set sharer bits in ascending node order. The iterator
    /// copies the mask, so the entry may be mutated while it is live.
    fn sharer_iter(&self) -> NodeMaskIter {
        self.sharers.iter()
    }

    fn is_sharer(&self, node: usize) -> bool {
        self.sharers.contains(node)
    }

    fn add_sharer(&mut self, node: usize) {
        self.sharers.insert(node);
    }

    fn remove_sharer(&mut self, node: usize) {
        self.sharers.remove(node);
    }
}

/// One node's directory + L2 slice controller.
#[derive(Debug, Clone)]
pub struct Directory {
    node: usize,
    mem_node: usize,
    capacity_lines: usize,
    deferred_limit: usize,
    // Deterministic map: eviction-victim scans iterate these entries, so
    // iteration order must not depend on hasher state (lint rule D1).
    entries: DetMap<LineAddr, DirEntry>,
    tick: u64,
    stats: DirStats,
}

impl Directory {
    /// Creates the slice at `node`, backed by the memory controller at
    /// `mem_node`, holding up to `capacity_lines` resident lines.
    pub fn new(node: usize, mem_node: usize, capacity_lines: usize) -> Self {
        assert!(capacity_lines >= 4, "L2 slice too small to be useful");
        Directory {
            node,
            mem_node,
            capacity_lines,
            deferred_limit: 16,
            entries: DetMap::new(),
            tick: 0,
            stats: DirStats::default(),
        }
    }

    /// This slice's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// The directory state of a line (`DI` when untracked).
    pub fn state_of(&self, line: LineAddr) -> DirState {
        self.entries.get(&line).map_or(DirState::DI, |e| e.state)
    }

    /// The current sharers of a line.
    pub fn sharers_of(&self, line: LineAddr) -> Vec<usize> {
        self.entries
            .get(&line)
            .map_or(Vec::new(), |e| e.sharer_list())
    }

    /// Number of sharers of a line, without materializing the list.
    pub fn sharer_count_of(&self, line: LineAddr) -> usize {
        self.entries.get(&line).map_or(0, |e| e.sharer_count())
    }

    /// The owner of a line in `DM`, if any.
    pub fn owner_of(&self, line: LineAddr) -> Option<usize> {
        self.entries
            .get(&line)
            .filter(|e| e.state == DirState::DM)
            .map(|e| e.owner)
    }

    /// Number of tracked lines (resident + transient).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Functionally pre-loads a line as resident-valid (`DV`), as if it
    /// had been fetched and written back before the measured window. Used
    /// to warm the L2 before timing (the paper measures steady-state
    /// windows, e.g. "between a fixed number of barrier instances").
    /// No-op if the line is already tracked or the slice is full.
    pub fn preload(&mut self, line: LineAddr) -> bool {
        if self.entries.contains_key(&line) || self.entries.len() >= self.capacity_lines {
            return false;
        }
        self.tick += 1;
        self.entries
            .insert(line, DirEntry::new(DirState::DV, self.tick));
        true
    }

    /// Handles a message from `from` (an L1 node or the memory
    /// controller).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for combinations Table 2 marks "error".
    pub fn handle(&mut self, from: usize, msg: CoherenceMsg) -> Result<Vec<OutMsg>, ProtocolError> {
        let line = msg.line();
        let before = self.state_of(line);
        let mut out = Vec::new();
        match msg {
            CoherenceMsg::Req { kind, .. } => self.handle_request(from, kind, line, &mut out)?,
            CoherenceMsg::WriteBack { .. } => self.handle_writeback(from, line, &mut out)?,
            CoherenceMsg::InvAck { .. } => self.handle_inv_ack(from, line, &mut out)?,
            CoherenceMsg::DwgAck { with_data, .. } => {
                self.handle_dwg_ack(from, line, with_data, &mut out)?
            }
            CoherenceMsg::MemAck { .. } => self.handle_mem_ack(line, &mut out)?,
            other => {
                return Err(self.error(line, &format!("{other:?}")));
            }
        }
        self.drain_deferred(line, &mut out)?;
        self.enforce_capacity(&mut out)?;
        // One trace record per net state change of the handled line. The
        // directory is clock-agnostic, so records are stamped with the
        // slice's monotone event counter rather than a global cycle.
        let after = self.state_of(line);
        if after != before {
            trace::emit_with(Cycle(self.tick), || TraceEvent::Dir {
                node: self.node as u64,
                line: line.0,
                from: format!("{before:?}"),
                to: format!("{after:?}"),
            });
        }
        Ok(out)
    }

    fn error(&self, line: LineAddr, event: &str) -> ProtocolError {
        ProtocolError {
            controller: "directory",
            state: format!("{:?}", self.state_of(line)),
            event: event.to_string(),
            line,
        }
    }

    /// The entry for a line the protocol dispatch already proved tracked:
    /// every caller matched on `state_of(line)` (or inserted the entry
    /// itself) before asking for mutable access, so absence here is a
    /// protocol bug, not a recoverable condition.
    fn tracked_mut(&mut self, line: LineAddr) -> &mut DirEntry {
        // lint: allow(P1) state_of(line) returned a tracked state on every path here
        self.entries.get_mut(&line).expect("tracked")
    }

    fn touch(&mut self, line: LineAddr) {
        self.tick += 1;
        let t = self.tick;
        if let Some(e) = self.entries.get_mut(&line) {
            e.lru = t;
        }
    }

    fn handle_request(
        &mut self,
        from: usize,
        mut kind: ReqType,
        line: LineAddr,
        out: &mut Vec<OutMsg>,
    ) -> Result<(), ProtocolError> {
        self.stats.requests += 1;
        self.touch(line);
        let state = self.state_of(line);
        match state {
            DirState::DI => {
                // Fetch from memory; Upg is reinterpreted (the requester
                // cannot really hold a copy of an unresident line).
                if kind == ReqType::Upg {
                    kind = ReqType::Ex;
                    self.stats.reinterpreted += 1;
                }
                let next = if kind == ReqType::Sh {
                    DirState::DIDSD
                } else {
                    DirState::DIDMD
                };
                self.tick += 1;
                let mut e = DirEntry::new(next, self.tick);
                e.requester = from;
                self.entries.insert(line, e);
                self.stats.mem_reads += 1;
                out.push(OutMsg {
                    to: self.mem_node,
                    msg: CoherenceMsg::MemReq { line, write: false },
                });
            }
            DirState::DV => {
                if kind == ReqType::Upg {
                    kind = ReqType::Ex;
                    self.stats.reinterpreted += 1;
                }
                let e = self.tracked_mut(line);
                e.state = DirState::DM;
                e.owner = from;
                let grant = if kind == ReqType::Sh {
                    Grant::Exclusive
                } else {
                    Grant::Modified
                };
                self.stats.data_replies += 1;
                out.push(OutMsg {
                    to: from,
                    msg: CoherenceMsg::Data { grant, line },
                });
            }
            DirState::DS => {
                if kind == ReqType::Upg && !self.entries[&line].is_sharer(from) {
                    // The requester's copy died in a race: full exclusive.
                    kind = ReqType::Ex;
                    self.stats.reinterpreted += 1;
                }
                match kind {
                    ReqType::Sh => {
                        let e = self.tracked_mut(line);
                        e.add_sharer(from);
                        self.stats.data_replies += 1;
                        out.push(OutMsg {
                            to: from,
                            msg: CoherenceMsg::Data {
                                grant: Grant::Shared,
                                line,
                            },
                        });
                    }
                    ReqType::Ex | ReqType::Upg => {
                        let upgrade = kind == ReqType::Upg;
                        let e = self.tracked_mut(line);
                        e.remove_sharer(from);
                        let victims = e.sharer_iter();
                        e.acks_pending = e.sharer_count() as u32;
                        e.requester = from;
                        e.sharers.clear();
                        for v in victims {
                            self.stats.invalidations += 1;
                            out.push(OutMsg {
                                to: v,
                                msg: CoherenceMsg::Inv { line },
                            });
                        }
                        let e = self.tracked_mut(line);
                        if e.acks_pending == 0 {
                            e.state = DirState::DM;
                            e.owner = from;
                            if upgrade {
                                self.stats.exc_acks += 1;
                                out.push(OutMsg {
                                    to: from,
                                    msg: CoherenceMsg::ExcAck { line },
                                });
                            } else {
                                self.stats.data_replies += 1;
                                out.push(OutMsg {
                                    to: from,
                                    msg: CoherenceMsg::Data {
                                        grant: Grant::Modified,
                                        line,
                                    },
                                });
                            }
                        } else {
                            e.state = if upgrade {
                                DirState::DSDMA
                            } else {
                                DirState::DSDMDA
                            };
                        }
                    }
                }
            }
            DirState::DM => {
                let owner = self.entries[&line].owner;
                if from == owner {
                    // The owner silently dropped a clean E copy and missed
                    // again: regrant directly.
                    let grant = if kind == ReqType::Sh {
                        Grant::Exclusive
                    } else {
                        Grant::Modified
                    };
                    self.stats.data_replies += 1;
                    out.push(OutMsg {
                        to: from,
                        msg: CoherenceMsg::Data { grant, line },
                    });
                    return Ok(());
                }
                let e = self.tracked_mut(line);
                e.requester = from;
                match kind {
                    ReqType::Sh => {
                        e.state = DirState::DMDSD;
                        self.stats.downgrades += 1;
                        out.push(OutMsg {
                            to: owner,
                            msg: CoherenceMsg::Dwg { line },
                        });
                    }
                    ReqType::Ex | ReqType::Upg => {
                        e.state = DirState::DMDMD;
                        if kind == ReqType::Upg {
                            self.stats.reinterpreted += 1;
                        }
                        self.stats.invalidations += 1;
                        out.push(OutMsg {
                            to: owner,
                            msg: CoherenceMsg::Inv { line },
                        });
                    }
                }
            }
            // Transient: stall (`z`) or NACK when the queue is full.
            _ => {
                let limit = self.deferred_limit;
                let e = self.tracked_mut(line);
                if e.deferred.len() >= limit {
                    self.stats.nacks += 1;
                    out.push(OutMsg {
                        to: from,
                        msg: CoherenceMsg::Retry { line },
                    });
                } else {
                    e.deferred.push_back((from, kind));
                    self.stats.deferred += 1;
                }
            }
        }
        Ok(())
    }

    fn handle_writeback(
        &mut self,
        from: usize,
        line: LineAddr,
        _out: &mut [OutMsg],
    ) -> Result<(), ProtocolError> {
        let state = self.state_of(line);
        match state {
            DirState::DM => {
                // Owner eviction: "save/DV".
                let e = self.tracked_mut(line);
                if e.owner != from {
                    return Err(self.error(line, "WriteBack(non-owner)"));
                }
                e.state = DirState::DV;
                e.owner = usize::MAX;
            }
            DirState::DMDSD => {
                // Crossed with our Dwg: "save/DM.DSᴬ".
                self.tracked_mut(line).state = DirState::DMDSA;
            }
            DirState::DMDMD => {
                // Crossed with our Inv: "save/DM.DMᴬ".
                self.tracked_mut(line).state = DirState::DMDMA;
            }
            DirState::DMDID => {
                // Crossed with our eviction Inv: "save/DS.DIᴬ" — still owe
                // one ack (the ex-owner answers the Inv from I).
                let e = self.tracked_mut(line);
                e.state = DirState::DSDIA;
                e.acks_pending = 1;
            }
            _ => return Err(self.error(line, "WriteBack")),
        }
        Ok(())
    }

    fn handle_inv_ack(
        &mut self,
        _from: usize,
        line: LineAddr,
        out: &mut Vec<OutMsg>,
    ) -> Result<(), ProtocolError> {
        let state = self.state_of(line);
        match state {
            DirState::DSDIA => {
                let e = self.tracked_mut(line);
                e.acks_pending -= 1;
                if e.acks_pending == 0 {
                    // "evict/DI": push the L2 copy back to memory.
                    self.remove_with_memory_writeback(line, out);
                }
            }
            DirState::DSDMDA => {
                let e = self.tracked_mut(line);
                e.acks_pending -= 1;
                if e.acks_pending == 0 {
                    e.state = DirState::DM;
                    e.owner = e.requester;
                    let to = e.requester;
                    self.stats.data_replies += 1;
                    out.push(OutMsg {
                        to,
                        msg: CoherenceMsg::Data {
                            grant: Grant::Modified,
                            line,
                        },
                    });
                }
            }
            DirState::DSDMA => {
                let e = self.tracked_mut(line);
                e.acks_pending -= 1;
                if e.acks_pending == 0 {
                    e.state = DirState::DM;
                    e.owner = e.requester;
                    let to = e.requester;
                    self.stats.exc_acks += 1;
                    out.push(OutMsg {
                        to,
                        msg: CoherenceMsg::ExcAck { line },
                    });
                }
            }
            DirState::DMDID => {
                // "save & evict/DI".
                self.remove_with_memory_writeback(line, out);
            }
            DirState::DMDMD | DirState::DMDMA => {
                // "save & fwd/DM" (DMDMD) or "Data(M)/DM" (DMDMA).
                let e = self.tracked_mut(line);
                e.state = DirState::DM;
                e.owner = e.requester;
                let to = e.requester;
                self.stats.data_replies += 1;
                out.push(OutMsg {
                    to,
                    msg: CoherenceMsg::Data {
                        grant: Grant::Modified,
                        line,
                    },
                });
            }
            _ => return Err(self.error(line, "InvAck")),
        }
        Ok(())
    }

    fn handle_dwg_ack(
        &mut self,
        _from: usize,
        line: LineAddr,
        _with_data: bool,
        out: &mut Vec<OutMsg>,
    ) -> Result<(), ProtocolError> {
        let state = self.state_of(line);
        match state {
            DirState::DMDSD => {
                // "save & fwd": the owner keeps a shared copy; the
                // requester joins as a sharer.
                let e = self.tracked_mut(line);
                e.state = DirState::DS;
                let owner = e.owner;
                let req = e.requester;
                e.owner = usize::MAX;
                e.sharers.clear();
                e.add_sharer(owner);
                e.add_sharer(req);
                self.stats.data_replies += 1;
                out.push(OutMsg {
                    to: req,
                    msg: CoherenceMsg::Data {
                        grant: Grant::Shared,
                        line,
                    },
                });
            }
            DirState::DMDSA => {
                // Owner evicted mid-downgrade: requester is the only copy.
                let e = self.tracked_mut(line);
                e.state = DirState::DM;
                e.owner = e.requester;
                let to = e.requester;
                self.stats.data_replies += 1;
                out.push(OutMsg {
                    to,
                    msg: CoherenceMsg::Data {
                        grant: Grant::Exclusive,
                        line,
                    },
                });
            }
            _ => return Err(self.error(line, "DwgAck")),
        }
        Ok(())
    }

    fn handle_mem_ack(
        &mut self,
        line: LineAddr,
        out: &mut Vec<OutMsg>,
    ) -> Result<(), ProtocolError> {
        let state = self.state_of(line);
        match state {
            DirState::DIDSD | DirState::DIDMD => {
                // "repl & fwd/DM".
                let e = self.tracked_mut(line);
                e.state = DirState::DM;
                e.owner = e.requester;
                let grant = if state == DirState::DIDSD {
                    Grant::Exclusive
                } else {
                    Grant::Modified
                };
                let to = e.requester;
                self.stats.data_replies += 1;
                out.push(OutMsg {
                    to,
                    msg: CoherenceMsg::Data { grant, line },
                });
            }
            _ => return Err(self.error(line, "MemAck")),
        }
        Ok(())
    }

    /// Removes a line, writing the L2 copy back to memory, and leaves any
    /// deferred requests attached for [`drain_deferred`](Self::handle) to
    /// replay against the now-DI line.
    fn remove_with_memory_writeback(&mut self, line: LineAddr, out: &mut Vec<OutMsg>) {
        self.stats.mem_writes += 1;
        out.push(OutMsg {
            to: self.mem_node,
            msg: CoherenceMsg::MemReq { line, write: true },
        });
        let deferred = self
            .entries
            .remove(&line)
            .map(|e| e.deferred)
            .unwrap_or_default();
        if !deferred.is_empty() {
            // Stash the queue on a fresh DI placeholder so the replay loop
            // finds it. (The placeholder is dropped if the replay empties
            // it without re-tracking the line.)
            self.tick += 1;
            let mut e = DirEntry::new(DirState::DI, self.tick);
            e.deferred = deferred;
            self.entries.insert(line, e);
        }
    }

    /// Replays deferred requests while the line is stable (or DI).
    fn drain_deferred(
        &mut self,
        line: LineAddr,
        out: &mut Vec<OutMsg>,
    ) -> Result<(), ProtocolError> {
        for _ in 0..64 {
            let state = self.state_of(line);
            if !state.is_stable() {
                return Ok(());
            }
            let next = match self.entries.get_mut(&line) {
                Some(e) => e.deferred.pop_front(),
                None => None,
            };
            // Drop an empty DI placeholder left by an eviction.
            if let Some(e) = self.entries.get(&line) {
                if e.state == DirState::DI && e.deferred.is_empty() && next.is_none() {
                    self.entries.remove(&line);
                }
            }
            let Some((from, kind)) = next else {
                return Ok(());
            };
            // Re-dispatch; a deferred Upg against a line the requester no
            // longer shares is reinterpreted inside `handle_request`.
            let stash = match self.entries.get_mut(&line) {
                Some(e) if e.state == DirState::DI => {
                    // Temporarily pull the placeholder so DI handling can
                    // insert a fresh transient entry; re-attach leftovers.
                    let rest = std::mem::take(&mut e.deferred);
                    self.entries.remove(&line);
                    rest
                }
                _ => VecDeque::new(),
            };
            self.handle_request(from, kind, line, out)?;
            if !stash.is_empty() {
                if let Some(e) = self.entries.get_mut(&line) {
                    for item in stash {
                        e.deferred.push_back(item);
                    }
                } else {
                    self.tick += 1;
                    let mut e = DirEntry::new(DirState::DI, self.tick);
                    e.deferred = stash;
                    self.entries.insert(line, e);
                }
            }
        }
        Ok(())
    }

    /// Evicts LRU stable lines while over capacity ("Repl" events).
    fn enforce_capacity(&mut self, out: &mut Vec<OutMsg>) -> Result<(), ProtocolError> {
        while self.entries.len() > self.capacity_lines {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.state.is_stable() && e.deferred.is_empty())
                .min_by_key(|(_, e)| e.lru)
                .map(|(l, _)| *l);
            let Some(line) = victim else {
                return Ok(()); // everything is in flight; allow overflow
            };
            self.stats.evictions += 1;
            match self.state_of(line) {
                DirState::DV | DirState::DI => {
                    self.remove_with_memory_writeback(line, out);
                }
                DirState::DS => {
                    let e = self.tracked_mut(line);
                    let victims = e.sharer_iter();
                    e.acks_pending = e.sharer_count() as u32;
                    e.sharers.clear();
                    if e.acks_pending == 0 {
                        self.remove_with_memory_writeback(line, out);
                    } else {
                        e.state = DirState::DSDIA;
                        for v in victims {
                            self.stats.invalidations += 1;
                            out.push(OutMsg {
                                to: v,
                                msg: CoherenceMsg::Inv { line },
                            });
                        }
                    }
                }
                DirState::DM => {
                    let e = self.tracked_mut(line);
                    e.state = DirState::DMDID;
                    let owner = e.owner;
                    self.stats.invalidations += 1;
                    out.push(OutMsg {
                        to: owner,
                        msg: CoherenceMsg::Inv { line },
                    });
                }
                _ => unreachable!("victims are stable"),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        Directory::new(0, 99, 1024) // memory controller at node 99
    }

    fn req(kind: ReqType, line: LineAddr) -> CoherenceMsg {
        CoherenceMsg::Req { kind, line }
    }

    const L: LineAddr = LineAddr(0x100);

    /// Brings `line` to DV (resident, no sharers) via a fetch + writeback.
    fn to_dv(d: &mut Directory, line: LineAddr) {
        let out = d.handle(1, req(ReqType::Ex, line)).unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::MemReq { write: false, .. }
        ));
        d.handle(99, CoherenceMsg::MemAck { line }).unwrap();
        assert_eq!(d.state_of(line), DirState::DM);
        d.handle(1, CoherenceMsg::WriteBack { line }).unwrap();
        assert_eq!(d.state_of(line), DirState::DV);
    }

    #[test]
    fn transitions_emit_trace_events() {
        let (records, ()) = trace::capture(|| {
            let mut d = dir();
            d.handle(3, req(ReqType::Sh, L)).unwrap();
            d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        });
        if !trace::compiled() {
            return;
        }
        let dirs: Vec<(String, String)> = records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::Dir {
                    node: 0,
                    line,
                    from,
                    to,
                } if *line == L.0 => Some((from.clone(), to.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            dirs,
            vec![
                ("DI".to_string(), "DIDSD".to_string()),
                ("DIDSD".to_string(), "DM".to_string()),
            ],
            "each net state change of the line is one dir record"
        );
    }

    #[test]
    fn cold_read_fetches_memory_and_grants_exclusive() {
        let mut d = dir();
        let out = d.handle(3, req(ReqType::Sh, L)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, 99);
        assert_eq!(d.state_of(L), DirState::DIDSD);
        let out = d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        assert_eq!(
            out[0],
            OutMsg {
                to: 3,
                msg: CoherenceMsg::Data {
                    grant: Grant::Exclusive,
                    line: L
                }
            }
        );
        assert_eq!(d.state_of(L), DirState::DM);
        assert_eq!(d.owner_of(L), Some(3));
    }

    #[test]
    fn cold_write_grants_modified() {
        let mut d = dir();
        d.handle(5, req(ReqType::Ex, L)).unwrap();
        assert_eq!(d.state_of(L), DirState::DIDMD);
        let out = d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Modified,
                ..
            }
        ));
        assert_eq!(d.owner_of(L), Some(5));
    }

    #[test]
    fn dv_read_grants_exclusive() {
        let mut d = dir();
        to_dv(&mut d, L);
        let out = d.handle(7, req(ReqType::Sh, L)).unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Exclusive,
                ..
            }
        ));
        assert_eq!(d.state_of(L), DirState::DM);
        assert_eq!(d.owner_of(L), Some(7));
    }

    #[test]
    fn downgrade_on_shared_request_to_owned_line() {
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        // Node 2 reads: owner 1 must downgrade.
        let out = d.handle(2, req(ReqType::Sh, L)).unwrap();
        assert_eq!(
            out,
            vec![OutMsg {
                to: 1,
                msg: CoherenceMsg::Dwg { line: L }
            }]
        );
        assert_eq!(d.state_of(L), DirState::DMDSD);
        let out = d
            .handle(
                1,
                CoherenceMsg::DwgAck {
                    line: L,
                    with_data: true,
                },
            )
            .unwrap();
        assert_eq!(
            out[0],
            OutMsg {
                to: 2,
                msg: CoherenceMsg::Data {
                    grant: Grant::Shared,
                    line: L
                }
            }
        );
        assert_eq!(d.state_of(L), DirState::DS);
        let mut sharers = d.sharers_of(L);
        sharers.sort_unstable();
        assert_eq!(sharers, vec![1, 2]);
        assert_eq!(d.sharer_count_of(L), 2);
    }

    #[test]
    fn ownership_transfer_on_exclusive_request() {
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        let out = d.handle(2, req(ReqType::Ex, L)).unwrap();
        assert_eq!(
            out,
            vec![OutMsg {
                to: 1,
                msg: CoherenceMsg::Inv { line: L }
            }]
        );
        assert_eq!(d.state_of(L), DirState::DMDMD);
        let out = d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: true,
                },
            )
            .unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Modified,
                ..
            }
        ));
        assert_eq!(d.owner_of(L), Some(2));
    }

    #[test]
    fn shared_upgrade_invalidates_others_then_exc_acks() {
        let mut d = dir();
        // Build DS with sharers {1, 2, 3} (first reader gets E; a second
        // reader triggers a downgrade; further readers join DS).
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        d.handle(2, req(ReqType::Sh, L)).unwrap();
        d.handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: true,
            },
        )
        .unwrap();
        d.handle(3, req(ReqType::Sh, L)).unwrap();
        assert_eq!(d.sharer_count_of(L), 3);
        // Sharer 2 upgrades: invalidate 1 and 3, then ExcAck.
        let out = d.handle(2, req(ReqType::Upg, L)).unwrap();
        let inv_targets: Vec<usize> = out.iter().map(|m| m.to).collect();
        assert_eq!(inv_targets.len(), 2);
        assert!(inv_targets.contains(&1) && inv_targets.contains(&3));
        assert_eq!(d.state_of(L), DirState::DSDMA);
        assert!(d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: false
                }
            )
            .unwrap()
            .is_empty());
        let out = d
            .handle(
                3,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: false,
                },
            )
            .unwrap();
        assert_eq!(
            out,
            vec![OutMsg {
                to: 2,
                msg: CoherenceMsg::ExcAck { line: L }
            }]
        );
        assert_eq!(d.owner_of(L), Some(2));
    }

    #[test]
    fn exclusive_request_over_sharers_sends_data() {
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        d.handle(2, req(ReqType::Sh, L)).unwrap();
        d.handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: true,
            },
        )
        .unwrap();
        // Node 4 (not a sharer) wants exclusive: invalidate {1, 2}.
        let out = d.handle(4, req(ReqType::Ex, L)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(d.state_of(L), DirState::DSDMDA);
        d.handle(
            1,
            CoherenceMsg::InvAck {
                line: L,
                with_data: false,
            },
        )
        .unwrap();
        let out = d
            .handle(
                2,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: false,
                },
            )
            .unwrap();
        assert_eq!(
            out[0],
            OutMsg {
                to: 4,
                msg: CoherenceMsg::Data {
                    grant: Grant::Modified,
                    line: L
                }
            }
        );
        assert_eq!(d.owner_of(L), Some(4));
    }

    #[test]
    fn requests_against_transient_lines_are_deferred_and_replayed() {
        let mut d = dir();
        d.handle(1, req(ReqType::Sh, L)).unwrap(); // DI → DIDSD
        let out = d.handle(2, req(ReqType::Sh, L)).unwrap();
        assert!(out.is_empty(), "z-stalled");
        assert_eq!(d.stats().deferred, 1);
        // Memory returns: node 1 gets Data(E), then the deferred request
        // replays: node 2's read downgrades node 1.
        let out = d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Exclusive,
                ..
            }
        ));
        assert_eq!(
            out[1],
            OutMsg {
                to: 1,
                msg: CoherenceMsg::Dwg { line: L }
            }
        );
        assert_eq!(d.state_of(L), DirState::DMDSD);
    }

    #[test]
    fn deferred_queue_overflow_nacks() {
        let mut d = dir();
        d.deferred_limit = 2;
        d.handle(1, req(ReqType::Sh, L)).unwrap();
        d.handle(2, req(ReqType::Sh, L)).unwrap();
        d.handle(3, req(ReqType::Sh, L)).unwrap();
        let out = d.handle(4, req(ReqType::Sh, L)).unwrap();
        assert_eq!(
            out,
            vec![OutMsg {
                to: 4,
                msg: CoherenceMsg::Retry { line: L }
            }]
        );
        assert_eq!(d.stats().nacks, 1);
    }

    #[test]
    fn owner_writeback_saves_to_dv() {
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        let out = d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
        assert!(out.is_empty());
        assert_eq!(d.state_of(L), DirState::DV);
        assert_eq!(d.owner_of(L), None);
    }

    #[test]
    fn writeback_crossing_downgrade() {
        // DM.DSᴰ + WriteBack → DM.DSᴬ; then DwgAck → Data(E).
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        d.handle(2, req(ReqType::Sh, L)).unwrap(); // DMDSD, Dwg → 1
        d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
        assert_eq!(d.state_of(L), DirState::DMDSA);
        let out = d
            .handle(
                1,
                CoherenceMsg::DwgAck {
                    line: L,
                    with_data: false,
                },
            )
            .unwrap();
        assert_eq!(
            out[0],
            OutMsg {
                to: 2,
                msg: CoherenceMsg::Data {
                    grant: Grant::Exclusive,
                    line: L
                }
            }
        );
        assert_eq!(d.owner_of(L), Some(2));
    }

    #[test]
    fn writeback_crossing_invalidation() {
        // DM.DMᴰ + WriteBack → DM.DMᴬ; then InvAck → Data(M).
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        d.handle(2, req(ReqType::Ex, L)).unwrap(); // DMDMD
        d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
        assert_eq!(d.state_of(L), DirState::DMDMA);
        let out = d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: false,
                },
            )
            .unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Modified,
                ..
            }
        ));
    }

    #[test]
    fn upgrade_from_non_sharer_is_reinterpreted() {
        let mut d = dir();
        d.handle(1, req(ReqType::Ex, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        d.handle(2, req(ReqType::Sh, L)).unwrap();
        d.handle(
            1,
            CoherenceMsg::DwgAck {
                line: L,
                with_data: true,
            },
        )
        .unwrap();
        // Node 5 never held the line but sends Upg (race artifact).
        let out = d.handle(5, req(ReqType::Upg, L)).unwrap();
        assert_eq!(out.len(), 2, "treated as Ex: invalidate both sharers");
        assert_eq!(d.stats().reinterpreted, 1);
        assert_eq!(d.state_of(L), DirState::DSDMDA);
    }

    #[test]
    fn capacity_eviction_of_shared_line() {
        let mut d = Directory::new(0, 99, 4);
        // Fill 5 distinct lines via cold exclusive fetches + writebacks so
        // all are stable DV; the 5th insert must evict the LRU.
        for i in 0..5u64 {
            let line = LineAddr(0x1000 + i * 32);
            d.handle(1, req(ReqType::Ex, line)).unwrap();
            d.handle(99, CoherenceMsg::MemAck { line }).unwrap();
            d.handle(1, CoherenceMsg::WriteBack { line }).unwrap();
        }
        assert!(d.tracked() <= 4);
        assert!(d.stats().evictions >= 1);
        assert!(d.stats().mem_writes >= 1, "DV victim written to memory");
    }

    #[test]
    fn capacity_eviction_of_owned_line_reclaims_data() {
        let mut d = Directory::new(0, 99, 4);
        let mut lines = Vec::new();
        for i in 0..5u64 {
            let line = LineAddr(0x1000 + i * 32);
            lines.push(line);
            d.handle(1, req(ReqType::Ex, line)).unwrap();
            d.handle(99, CoherenceMsg::MemAck { line }).unwrap();
        }
        // The LRU owned line went to DMDID with an Inv to its owner.
        let victim = lines[0];
        assert_eq!(d.state_of(victim), DirState::DMDID);
        let out = d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: victim,
                    with_data: true,
                },
            )
            .unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::MemReq { write: true, .. }
        ));
        assert_eq!(d.state_of(victim), DirState::DI);
    }

    #[test]
    fn errors_where_table_says_error() {
        let mut d = dir();
        // WriteBack to an untracked (DI) line.
        assert!(d.handle(1, CoherenceMsg::WriteBack { line: L }).is_err());
        // InvAck in DI.
        assert!(d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: L,
                    with_data: false
                }
            )
            .is_err());
        // MemAck in DV.
        to_dv(&mut d, L);
        assert!(d.handle(99, CoherenceMsg::MemAck { line: L }).is_err());
        // DwgAck in DV.
        assert!(d
            .handle(
                1,
                CoherenceMsg::DwgAck {
                    line: L,
                    with_data: false
                }
            )
            .is_err());
    }

    #[test]
    fn owner_rerequest_after_silent_e_drop() {
        let mut d = dir();
        d.handle(1, req(ReqType::Sh, L)).unwrap();
        d.handle(99, CoherenceMsg::MemAck { line: L }).unwrap();
        assert_eq!(d.owner_of(L), Some(1));
        // Node 1 silently dropped its E copy and rereads.
        let out = d.handle(1, req(ReqType::Sh, L)).unwrap();
        assert!(matches!(
            out[0].msg,
            CoherenceMsg::Data {
                grant: Grant::Exclusive,
                ..
            }
        ));
        assert_eq!(d.owner_of(L), Some(1));
    }

    #[test]
    fn l2_eviction_of_owned_line_then_refetch() {
        // Full DMDID → DI → fresh DI fetch path with a deferred request.
        let mut d = Directory::new(0, 99, 4);
        let mut lines = Vec::new();
        for i in 0..5u64 {
            let line = LineAddr(0x1000 + i * 32);
            lines.push(line);
            d.handle(1, req(ReqType::Ex, line)).unwrap();
            d.handle(99, CoherenceMsg::MemAck { line }).unwrap();
        }
        let victim = lines[0];
        // A new request arrives while the eviction is in flight: deferred.
        let out = d.handle(2, req(ReqType::Sh, victim)).unwrap();
        assert!(out.is_empty());
        // Owner's data comes back; line evicts; deferred request replays
        // as a cold miss.
        let out = d
            .handle(
                1,
                CoherenceMsg::InvAck {
                    line: victim,
                    with_data: true,
                },
            )
            .unwrap();
        assert!(out
            .iter()
            .any(|m| matches!(m.msg, CoherenceMsg::MemReq { write: true, .. })));
        assert!(out
            .iter()
            .any(|m| matches!(m.msg, CoherenceMsg::MemReq { write: false, .. })));
        assert_eq!(d.state_of(victim), DirState::DIDSD);
    }
}
