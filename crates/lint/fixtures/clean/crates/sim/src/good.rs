//! Clean fixture: the sanctioned counterpart of every violating idiom in
//! `../../../violating/`. Never compiled — only lexed by `fsoi-lint`.
//! Running `fsoi-lint check --root` against this tree must exit 0.

use fsoi_sim::det::{DetMap, DetSet};

pub fn build() -> DetMap<u64, u64> {
    let mut m = DetMap::new();
    m.insert(1, 2);
    m
}

pub fn tags() -> DetSet<u64> {
    let mut s = DetSet::new();
    s.insert(7);
    s
}

pub fn trace_lazily(cycle: Cycle) {
    trace::emit_with(cycle, || TraceEvent::Tick { at: cycle.0 });
}

pub fn documented_knob() -> Option<String> {
    std::env::var("FSOI_TRACE").ok()
}

pub fn justified(v: Option<u64>) -> u64 {
    v.expect("caller checked") // lint: allow(P1) callers gate on is_some first
}

// lint: allow(P1) the preceding-line form covers the next code line
pub fn also_justified(v: Option<u64>) -> u64 { v.unwrap() }

pub fn escape_hatched_lock() -> u64 {
    // lint: allow(D3) init-only lock, set before any cell runs
    let cell = std::sync::Mutex::new(3u64);
    cell.into_inner().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt_from_every_rule() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        let _ = std::time::Instant::now();
    }
}
