//! Meta/data bandwidth allocation (§4.3.2, item 3).
//!
//! Splitting a fixed lane budget between meta and data traffic, the paper
//! models the expected overall packet latency as
//!
//! ```text
//! L(B_M) = C₁/B_M + C₂/B_M² + C₃/(1 − B_M) + C₄/(1 − B_M)²
//! ```
//!
//! where `B_M` is the fraction of bandwidth given to meta packets. The
//! `1/B` terms are basic transmission latencies (inversely proportional to
//! lane bandwidth) and the `1/B²` terms the collision-resolution
//! contributions (`P_c · L_r`, both factors inversely proportional to
//! bandwidth). The constants fold application statistics — packet mix,
//! critical-path weights, expected retries. With the paper's workload the
//! optimum lands at `B_M ≈ 0.285`, i.e. "about 30 % of the bandwidth
//! should be allocated to … meta packets", realized as 3 meta vs 6 data
//! VCSELs (3/9 ≈ 0.33 being the closest integer split).

/// The latency model `L(B_M)` with its four workload constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthAllocationModel {
    c: [f64; 4],
}

impl BandwidthAllocationModel {
    /// Creates a model from the constants `C₁..C₄`.
    ///
    /// # Panics
    ///
    /// Panics if any constant is negative or all are zero.
    pub fn new(c1: f64, c2: f64, c3: f64, c4: f64) -> Self {
        let c = [c1, c2, c3, c4];
        assert!(
            c.iter().all(|&x| x >= 0.0),
            "constants must be non-negative"
        );
        assert!(
            c.iter().any(|&x| x > 0.0),
            "at least one constant must be positive"
        );
        BandwidthAllocationModel { c }
    }

    /// Constants calibrated from the paper's workload statistics; the
    /// resulting optimum is `B_M = 0.285`. The dominant `C₃` reflects the
    /// data lane's 5-cycle serialization weighted by the fraction of data
    /// packets on the critical path; the small `C₂`/`C₄` are the
    /// collision-resolution products at the observed collision rates.
    pub fn paper_default() -> Self {
        BandwidthAllocationModel::new(1.0, 0.05, 8.364, 0.05)
    }

    /// The constants `C₁..C₄`.
    pub fn constants(&self) -> [f64; 4] {
        self.c
    }

    /// The modelled mean latency (arbitrary units) at meta share `bm`.
    ///
    /// # Panics
    ///
    /// Panics unless `bm ∈ (0, 1)`.
    pub fn latency(&self, bm: f64) -> f64 {
        assert!(bm > 0.0 && bm < 1.0, "B_M must be strictly inside (0, 1)");
        let bd = 1.0 - bm;
        self.c[0] / bm + self.c[1] / (bm * bm) + self.c[2] / bd + self.c[3] / (bd * bd)
    }

    /// The optimal meta share, found by golden-section search (the model
    /// is strictly convex on (0, 1) for non-negative constants).
    pub fn optimal_bm(&self) -> f64 {
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (1e-6, 1.0 - 1e-6);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let (mut f1, mut f2) = (self.latency(x1), self.latency(x2));
        for _ in 0..200 {
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = self.latency(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = self.latency(x2);
            }
        }
        0.5 * (lo + hi)
    }

    /// Given a total of `total_vcsels` per destination, the integer
    /// meta/data split closest to the optimum (meta gets at least one).
    pub fn integer_split(&self, total_vcsels: usize) -> (usize, usize) {
        assert!(total_vcsels >= 2, "need at least one VCSEL per lane");
        let bm = self.optimal_bm();
        let meta = ((total_vcsels as f64 * bm).round() as usize).clamp(1, total_vcsels - 1);
        (meta, total_vcsels - meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimum_is_0_285() {
        let m = BandwidthAllocationModel::paper_default();
        let bm = m.optimal_bm();
        assert!((bm - 0.285).abs() < 0.005, "optimum B_M = {bm}");
    }

    #[test]
    fn optimum_is_a_minimum() {
        let m = BandwidthAllocationModel::paper_default();
        let bm = m.optimal_bm();
        let at = m.latency(bm);
        assert!(m.latency(bm - 0.05) > at);
        assert!(m.latency(bm + 0.05) > at);
        assert!(m.latency(0.05) > at);
        assert!(m.latency(0.9) > at);
    }

    #[test]
    fn paper_integer_split_is_3_of_9() {
        // 9 VCSELs at B_M = 0.285 → 2.6 ⇒ 3 meta, 6 data: the paper's
        // Table 3 lane widths.
        let m = BandwidthAllocationModel::paper_default();
        assert_eq!(m.integer_split(9), (3, 6));
    }

    #[test]
    fn symmetric_constants_give_half() {
        let m = BandwidthAllocationModel::new(1.0, 0.1, 1.0, 0.1);
        assert!((m.optimal_bm() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn heavier_data_term_pulls_optimum_down() {
        let light = BandwidthAllocationModel::new(1.0, 0.05, 4.0, 0.05);
        let heavy = BandwidthAllocationModel::new(1.0, 0.05, 16.0, 0.05);
        assert!(heavy.optimal_bm() < light.optimal_bm());
    }

    #[test]
    fn latency_blows_up_at_edges() {
        let m = BandwidthAllocationModel::paper_default();
        assert!(m.latency(0.001) > m.latency(0.285) * 10.0);
        assert!(m.latency(0.999) > m.latency(0.285) * 10.0);
    }

    #[test]
    fn constants_accessor() {
        let m = BandwidthAllocationModel::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.constants(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn latency_rejects_boundary() {
        BandwidthAllocationModel::paper_default().latency(1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_constant_panics() {
        BandwidthAllocationModel::new(-1.0, 0.0, 1.0, 0.0);
    }
}
