//! The cycle-driven FSOI network engine.
//!
//! Each node beams packets directly to their destinations — there is no
//! routing and no arbitration. Transmissions are slotted per packet class;
//! packets from senders sharing a receiver that occupy the same slot
//! *collide* and are retransmitted under exponential back-off after the
//! sender misses its confirmation (which arrives a fixed 2 cycles after a
//! clean receipt). The engine also implements the paper's §5.2 data-lane
//! optimizations: receiver-coordinated retransmission hints and
//! request-spacing slot reservations.
//!
//! # Example
//!
//! ```
//! use fsoi_net::config::FsoiConfig;
//! use fsoi_net::network::FsoiNetwork;
//! use fsoi_net::packet::{Packet, PacketClass};
//! use fsoi_net::topology::NodeId;
//!
//! let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 42);
//! net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 7)).unwrap();
//! while net.delivered_count() == 0 {
//!     net.tick();
//! }
//! let out = net.drain_delivered();
//! assert_eq!(out[0].packet.dst, NodeId(5));
//! ```

use crate::config::{FsoiConfig, TransmitterArray};
use crate::confirmation::{Confirmation, ConfirmationChannel, ConfirmationKind};
use crate::packet::{HeaderCode, Packet, PacketClass};
use crate::phase_array::PhaseArraySteering;
use crate::spacing::ReplySlotReservations;
use crate::topology::{receiver_index, NodeId};
use fsoi_sim::det::NodeMask;
use fsoi_sim::event::EventQueue;
use fsoi_sim::metrics::Registry;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::stats::Summary;
use fsoi_sim::trace::{self, TraceEvent};
use fsoi_sim::Cycle;

/// Label values for the two lanes, indexed like every `[meta, data]` pair.
const LANE_NAMES: [&str; 2] = ["meta", "data"];

/// Where each cycle of a delivered packet's latency went (the Figure 6/7
/// breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Waiting in the source's outgoing queue for a free slot.
    pub queuing: u64,
    /// Deliberate request-spacing delay applied before injection.
    pub scheduling: u64,
    /// Serialization + flight of the final, successful transmission.
    pub network: u64,
    /// Time lost to collisions and back-off (first attempt start → final
    /// attempt start).
    pub collision_resolution: u64,
}

impl LatencyBreakdown {
    /// Total latency in cycles.
    pub fn total(&self) -> u64 {
        self.queuing + self.scheduling + self.network + self.collision_resolution
    }
}

/// A successfully delivered packet with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The packet (with final retry count).
    pub packet: Packet,
    /// Cycle of delivery at the destination.
    pub delivered_at: Cycle,
    /// Latency attribution.
    pub breakdown: LatencyBreakdown,
}

/// Aggregate network statistics, indexed `[meta, data]` where per-class.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Packets accepted for injection.
    pub injected: [u64; 2],
    /// Packets rejected because the outgoing queue was full.
    pub rejected: [u64; 2],
    /// Packets delivered.
    pub delivered: [u64; 2],
    /// Transmission attempts (including retransmissions).
    pub transmissions: [u64; 2],
    /// Collision events (a slot at a receiver with ≥ 2 packets).
    pub collision_events: [u64; 2],
    /// Packets involved in collisions.
    pub collided_packets: [u64; 2],
    /// Retransmissions scheduled.
    pub retransmissions: [u64; 2],
    /// Packets dropped by raw bit errors (recovered via retransmission).
    pub bit_error_drops: [u64; 2],
    /// Data-lane hints issued.
    pub hints_issued: u64,
    /// Hints whose winner was a true collider.
    pub hints_correct: u64,
    /// Hints that made a non-collider believe it had won.
    pub hints_wrong: u64,
    /// Total packet latency, per class.
    pub latency: [Summary; 2],
    /// Queuing component.
    pub queuing: [Summary; 2],
    /// Scheduling component.
    pub scheduling: [Summary; 2],
    /// Network component.
    pub network: [Summary; 2],
    /// Collision-resolution component.
    pub resolution: [Summary; 2],
    /// Collision-resolution delay of only those packets that collided.
    pub resolution_when_collided: [Summary; 2],
    /// Retries per delivered packet.
    pub retries: [Summary; 2],
}

impl NetStats {
    /// First-attempt transmission probability per node per slot for a lane:
    /// initial (non-retry) transmissions / (nodes × slots elapsed).
    ///
    /// Returns 0.0 — never `NaN` or `±inf` — for degenerate zero-slot or
    /// zero-node configurations (e.g. a probe before the first slot
    /// boundary, or an empty sweep row).
    pub fn transmission_probability(&self, lane: usize, nodes: usize, slots: u64) -> f64 {
        if slots == 0 || nodes == 0 {
            return 0.0;
        }
        self.transmissions[lane] as f64 / (nodes as f64 * slots as f64)
    }

    /// Fraction of transmissions that collided, per lane.
    ///
    /// Returns 0.0 instead of `NaN` when nothing has been transmitted yet.
    pub fn collision_rate(&self, lane: usize) -> f64 {
        if self.transmissions[lane] == 0 {
            0.0
        } else {
            self.collided_packets[lane] as f64 / self.transmissions[lane] as f64
        }
    }

    /// Exports every counter and summary into `reg` under `net.*` names,
    /// labelled by lane — the single code path report tables build on.
    pub fn export(&self, reg: &mut Registry) {
        // `lane` indexes a dozen parallel counter arrays, not just
        // LANE_NAMES; an iterator rewrite would obscure that symmetry.
        #[allow(clippy::needless_range_loop)]
        for lane in 0..2 {
            let labels: [(&str, &str); 1] = [("lane", LANE_NAMES[lane])];
            reg.inc("net.injected", &labels, self.injected[lane]);
            reg.inc("net.rejected", &labels, self.rejected[lane]);
            reg.inc("net.delivered", &labels, self.delivered[lane]);
            reg.inc("net.transmissions", &labels, self.transmissions[lane]);
            reg.inc("net.collision_events", &labels, self.collision_events[lane]);
            reg.inc("net.collided_packets", &labels, self.collided_packets[lane]);
            reg.inc("net.retransmissions", &labels, self.retransmissions[lane]);
            reg.inc("net.bit_error_drops", &labels, self.bit_error_drops[lane]);
            reg.gauge("net.collision_rate", &labels, self.collision_rate(lane));
            reg.merge_summary("net.latency", &labels, &self.latency[lane]);
            reg.merge_summary("net.latency.queuing", &labels, &self.queuing[lane]);
            reg.merge_summary("net.latency.scheduling", &labels, &self.scheduling[lane]);
            reg.merge_summary("net.latency.network", &labels, &self.network[lane]);
            reg.merge_summary("net.latency.resolution", &labels, &self.resolution[lane]);
            reg.merge_summary(
                "net.latency.resolution_when_collided",
                &labels,
                &self.resolution_when_collided[lane],
            );
            reg.merge_summary("net.retries", &labels, &self.retries[lane]);
        }
        reg.inc("net.hints_issued", &[], self.hints_issued);
        reg.inc("net.hints_correct", &[], self.hints_correct);
        reg.inc("net.hints_wrong", &[], self.hints_wrong);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct GroupKey {
    dst: NodeId,
    lane: usize,
    rx: usize,
    slot_id: u64,
}

#[derive(Debug)]
struct NodeState {
    out: [BoundedQueue<Packet>; 2],
    tx_busy_until: [Cycle; 2],
    retries: [EventQueue<Packet>; 2],
    steering: [PhaseArraySteering; 2],
    reservations: ReplySlotReservations,
    expected_data: NodeMask,
}

/// An in-flight slot group: the packets that occupy one `(dst, rx, slot)`
/// cell of a lane until its resolution event fires.
#[derive(Debug)]
struct SlotGroup {
    slot_id: u64,
    packets: Vec<Packet>,
}

/// Dense per-lane active-slot state, indexed `dst * receivers + rx`.
///
/// The replacement for the old `DetMap<GroupKey, Vec<Packet>>`: group
/// lookup on the tx and resolve paths becomes one array index plus a
/// linear scan of the (at most two — current slot and a not-yet-resolved
/// previous slot under phase-array setup) groups live in that cell.
/// Determinism is structural: cells are only ever addressed point-wise by
/// a concrete key — nothing iterates the table — so no iteration order
/// exists to diverge.
#[derive(Debug)]
struct SlotTable {
    cells: Vec<Vec<SlotGroup>>,
    receivers: usize,
    live: usize,
}

impl SlotTable {
    fn new(nodes: usize, receivers: usize) -> Self {
        SlotTable {
            cells: (0..nodes * receivers).map(|_| Vec::new()).collect(),
            receivers,
            live: 0,
        }
    }

    /// Adds `packet` to its slot group, drawing a recycled packet buffer
    /// from `pool` when the group is new. Returns true exactly when a new
    /// group was created — the caller owes one resolution event per group.
    fn push(&mut self, key: &GroupKey, packet: Packet, pool: &mut Vec<Vec<Packet>>) -> bool {
        let cell = &mut self.cells[key.dst.0 * self.receivers + key.rx];
        if let Some(group) = cell.iter_mut().find(|g| g.slot_id == key.slot_id) {
            group.packets.push(packet);
            return false;
        }
        let mut packets = pool.pop().unwrap_or_default();
        packets.push(packet);
        cell.push(SlotGroup {
            slot_id: key.slot_id,
            packets,
        });
        self.live += 1;
        true
    }

    /// Removes and returns the packets of `key`'s group, if it is live.
    /// The caller returns the buffer to the pool after resolving it.
    fn take(&mut self, key: &GroupKey) -> Option<Vec<Packet>> {
        let cell = &mut self.cells[key.dst.0 * self.receivers + key.rx];
        let pos = cell.iter().position(|g| g.slot_id == key.slot_id)?;
        self.live -= 1;
        Some(cell.swap_remove(pos).packets)
    }
}

/// The free-space optical interconnect simulator.
#[derive(Debug)]
pub struct FsoiNetwork {
    cfg: FsoiConfig,
    now: Cycle,
    rng: Xoshiro256StarStar,
    nodes: Vec<NodeState>,
    // Slot groups feed collision resolution and the delivered-packet
    // order, which feed every export; the dense table is deterministic by
    // construction (point-wise addressing only, lint rule D1).
    slots: [SlotTable; 2],
    // Free-list of packet buffers for slot groups: steady-state slot
    // turnover recycles instead of allocating.
    pool: Vec<Vec<Packet>>,
    resolutions: EventQueue<GroupKey>,
    confirmations: ConfirmationChannel,
    delivered: Vec<Delivered>,
    stats: NetStats,
    next_id: u64,
    slot_len: [u64; 2],
    ser_cycles: [u64; 2],
}

impl FsoiNetwork {
    /// Creates a network from a configuration and RNG seed.
    pub fn new(cfg: FsoiConfig, seed: u64) -> Self {
        assert!(
            cfg.nodes <= NodeMask::CAPACITY,
            "expected-data masks hold at most {} nodes",
            NodeMask::CAPACITY
        );
        let qcap = cfg.outgoing_queue_capacity;
        let nodes = (0..cfg.nodes)
            .map(|_| NodeState {
                out: [BoundedQueue::new(qcap), BoundedQueue::new(qcap)],
                tx_busy_until: [Cycle::ZERO; 2],
                retries: [EventQueue::new(), EventQueue::new()],
                steering: [PhaseArraySteering::new(), PhaseArraySteering::new()],
                reservations: ReplySlotReservations::new(),
                expected_data: NodeMask::new(),
            })
            .collect();
        let slots = [
            SlotTable::new(cfg.nodes, cfg.lanes.spec(PacketClass::Meta).receivers),
            SlotTable::new(cfg.nodes, cfg.lanes.spec(PacketClass::Data).receivers),
        ];
        let slot_len = [
            cfg.lanes.slot_cycles(PacketClass::Meta),
            cfg.lanes.slot_cycles(PacketClass::Data),
        ];
        let ser_cycles = [
            cfg.lanes.serialization_cycles(PacketClass::Meta),
            cfg.lanes.serialization_cycles(PacketClass::Data),
        ];
        let confirmation_delay = cfg.confirmation_delay;
        if trace::compiled() {
            // A failed invariant anywhere downstream dumps the flight
            // recorder's JSONL tail for post-mortem replay.
            trace::install_panic_dump();
        }
        FsoiNetwork {
            cfg,
            now: Cycle::ZERO,
            rng: Xoshiro256StarStar::new(seed),
            nodes,
            slots,
            pool: Vec::new(),
            resolutions: EventQueue::new(),
            confirmations: ConfirmationChannel::new(confirmation_delay),
            delivered: Vec::new(),
            stats: NetStats::default(),
            next_id: 0,
            slot_len,
            ser_cycles,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FsoiConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The data-lane slot length in cycles (used by request spacing).
    pub fn data_slot_len(&self) -> u64 {
        self.slot_len[PacketClass::Data.lane()]
    }

    /// The meta-lane slot length in cycles.
    pub fn meta_slot_len(&self) -> u64 {
        self.slot_len[PacketClass::Meta.lane()]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of slots elapsed on a lane class.
    pub fn slots_elapsed(&self, class: PacketClass) -> u64 {
        self.now.as_u64() / self.slot_len[class.lane()]
    }

    /// Confirmations sent so far (traffic on the confirmation channel).
    pub fn confirmations_sent(&self) -> u64 {
        self.confirmations.sent()
    }

    /// Injects a packet for transmission.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the source's outgoing queue for that lane
    /// is full; the caller stalls and retries later.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either id is out of range — local traffic
    /// never enters the optical fabric.
    pub fn inject(&mut self, mut packet: Packet) -> Result<u64, Packet> {
        assert_ne!(packet.src, packet.dst, "no self-injection");
        assert!(
            packet.src.0 < self.cfg.nodes && packet.dst.0 < self.cfg.nodes,
            "node id out of range"
        );
        packet.id = self.next_id;
        packet.enqueued_at = self.now;
        let lane = packet.class.lane();
        match self.nodes[packet.src.0].out[lane].push(packet) {
            Ok(()) => {
                self.next_id += 1;
                self.stats.injected[lane] += 1;
                trace::emit_with(self.now, || TraceEvent::Inject {
                    packet: packet.id,
                    src: packet.src.0 as u64,
                    dst: packet.dst.0 as u64,
                    lane: lane as u64,
                    tag: packet.tag,
                });
                Ok(packet.id)
            }
            Err(p) => {
                self.stats.rejected[lane] += 1;
                trace::emit_with(self.now, || TraceEvent::Reject {
                    src: p.src.0 as u64,
                    dst: p.dst.0 as u64,
                    lane: lane as u64,
                });
                Err(p)
            }
        }
    }

    /// Registers that `dst` expects a data-packet reply from `src` (drives
    /// the §5.2 hint candidate set).
    pub fn expect_data(&mut self, dst: NodeId, src: NodeId) {
        self.nodes[dst.0].expected_data.insert(src.0);
    }

    /// Clears an expectation (reply received or transaction aborted).
    pub fn clear_expected(&mut self, dst: NodeId, src: NodeId) {
        self.nodes[dst.0].expected_data.remove(src.0);
    }

    /// Access to a node's incoming-data-slot reservation book (request
    /// spacing). The caller reserves with
    /// [`data_slot_len`](Self::data_slot_len) as the slot length.
    pub fn reservations_mut(&mut self, node: NodeId) -> &mut ReplySlotReservations {
        &mut self.nodes[node.0].reservations
    }

    /// Takes all packets delivered since the last drain.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Number of undrained deliveries.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// True when no packet is queued, in flight, or awaiting retry.
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(|t| t.live == 0)
            && self.resolutions.is_empty()
            && self.nodes.iter().all(|n| {
                n.out.iter().all(|q| q.is_empty()) && n.retries.iter().all(|r| r.is_empty())
            })
    }

    /// Advances the simulation by one cycle.
    pub fn tick(&mut self) {
        self.step_cycle();
        self.now += 1;
    }

    /// Processes everything due at the current cycle (the body of
    /// [`tick`](Self::tick), without the time advance).
    fn step_cycle(&mut self) {
        self.resolve_slots();
        self.start_transmissions();
        // Confirmations are drained for bookkeeping; their information
        // content (receipt, hints) has already been applied at resolution
        // time with the correct delays.
        let _ = self.confirmations.drain_due(self.now);
    }

    /// Runs `cycles` ticks, fast-forwarding over provably empty cycles.
    pub fn run(&mut self, cycles: u64) {
        self.advance_to(self.now + cycles);
    }

    /// The earliest cycle `>= now` at which the network has any work to
    /// do: the next resolution event, the next confirmation arrival, or
    /// the next slot boundary at which some node can start a transmission
    /// (a queued packet, or a retry that will have matured by then).
    /// Returns `None` when the network is completely quiet — nothing will
    /// ever happen again without a new injection.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let now = self.now.as_u64();
        let mut next = u64::MAX;
        if let Some(t) = self.resolutions.peek_time() {
            next = next.min(t.as_u64());
        }
        if let Some(t) = self.confirmations.next_due() {
            next = next.min(t.as_u64());
        }
        for lane in 0..2 {
            let slot = self.slot_len[lane];
            for node in &self.nodes {
                // Earliest cycle this node could pop a packet on this
                // lane: queued work is ready immediately, a retry matures
                // at its scheduled cycle. The transmission then waits for
                // the transmitter to go quiet and the next slot boundary —
                // exactly the eligibility test in `start_transmissions`.
                let mut ready = u64::MAX;
                if !node.out[lane].is_empty() {
                    ready = now;
                }
                if let Some(r) = node.retries[lane].peek_time() {
                    ready = ready.min(r.as_u64().max(now));
                }
                if ready == u64::MAX {
                    continue;
                }
                let eligible = Cycle(ready.max(node.tx_busy_until[lane].as_u64()));
                next = next.min(eligible.round_up_to_slot(slot).as_u64());
            }
        }
        (next != u64::MAX).then_some(Cycle(next))
    }

    /// Advances the simulation to `target`, jumping straight to each next
    /// interesting cycle instead of ticking one by one.
    ///
    /// Byte-identical to calling [`tick`](Self::tick) `target - now`
    /// times: a cycle below the [`next_event_at`](Self::next_event_at)
    /// bound pops no resolution, starts no transmission, and drains no
    /// confirmation, so it touches neither the RNG nor any queue — skipping
    /// it skips nothing. Cycles that do have work are processed in full, in
    /// order, at their exact times.
    pub fn advance_to(&mut self, target: Cycle) {
        while self.now < target {
            match self.next_event_at() {
                Some(at) if at < target => {
                    self.now = self.now.max(at);
                    self.step_cycle();
                    self.now += 1;
                }
                _ => self.now = target,
            }
        }
    }

    fn start_transmissions(&mut self) {
        // Hoisted slot-boundary flags: off-boundary cycles (the common
        // case when the lanes' slots are long) return before touching any
        // node state. The node-major × lane order of the loop below is
        // load-bearing — it fixes the insertion order of same-cycle
        // resolution events, which fixes the resolver's RNG draw order —
        // so the flags gate each lane in place rather than restructuring.
        let boundary = [
            self.now.is_slot_boundary(self.slot_len[0]),
            self.now.is_slot_boundary(self.slot_len[1]),
        ];
        if !boundary[0] && !boundary[1] {
            return;
        }
        for node_idx in 0..self.nodes.len() {
            for (lane, &at_boundary) in boundary.iter().enumerate() {
                if !at_boundary {
                    continue;
                }
                let slot = self.slot_len[lane];
                if self.nodes[node_idx].tx_busy_until[lane] > self.now {
                    continue;
                }
                // Retries take priority over fresh packets: the collided
                // packet is older and the coherence layer may be waiting on
                // its point-to-point ordering.
                let packet = {
                    let node = &mut self.nodes[node_idx];
                    node.retries[lane]
                        .pop_due(self.now)
                        .map(|(_, p)| p)
                        .or_else(|| node.out[lane].pop())
                };
                let Some(mut packet) = packet else { continue };

                let setup = match self.cfg.array {
                    TransmitterArray::Dedicated => 0,
                    TransmitterArray::PhaseArray { setup_cycles } => {
                        self.nodes[node_idx].steering[lane].aim(packet.dst, setup_cycles)
                    }
                };
                let ser = self.ser_cycles[lane];
                let finish = self.now + ser + setup;
                self.nodes[node_idx].tx_busy_until[lane] = finish;
                if packet.first_tx_at.is_none() {
                    packet.first_tx_at = Some(self.now);
                }
                self.stats.transmissions[lane] += 1;

                let rx = receiver_index(
                    packet.src,
                    packet.dst,
                    self.cfg.nodes,
                    self.cfg
                        .lanes
                        .spec(if lane == 0 {
                            PacketClass::Meta
                        } else {
                            PacketClass::Data
                        })
                        .receivers,
                );
                let key = GroupKey {
                    dst: packet.dst,
                    lane,
                    rx,
                    slot_id: self.now.as_u64() / slot,
                };
                trace::emit_with(self.now, || TraceEvent::TxStart {
                    packet: packet.id,
                    src: packet.src.0 as u64,
                    dst: packet.dst.0 as u64,
                    lane: lane as u64,
                    attempt: u64::from(packet.retries),
                    slot: key.slot_id,
                });
                // All packets of a slot resolve at the same deterministic
                // cycle: slot end plus the worst-case phase-array setup.
                // One resolution event per slot group — the packet that
                // opens the group schedules it, later colliders just join.
                let resolve_at = Cycle((key.slot_id + 1) * slot + self.cfg.phase_array_setup());
                if self.slots[lane].push(&key, packet, &mut self.pool) {
                    self.resolutions.push(resolve_at, key);
                }
            }
        }
    }

    fn resolve_slots(&mut self) {
        while let Some((resolve_at, key)) = self.resolutions.pop_due(self.now) {
            let Some(mut group) = self.slots[key.lane].take(&key) else {
                continue; // defensive: every event has exactly one group
            };
            if group.len() == 1 {
                // A clean slot can still be hit by a raw bit error; the
                // checksum catches it, no confirmation goes out, and the
                // sender retries — the same machinery as a collision
                // (§4.3.1: "errors and collisions [are] handled by the
                // same mechanism").
                let bits = self.cfg.lanes.spec(group[0].class).packet_bits;
                let p_err = self.cfg.packet_error_probability(bits);
                if p_err > 0.0 && self.rng.bernoulli(p_err) {
                    self.stats.bit_error_drops[key.lane] += 1;
                    self.drop_and_retry(key.lane, group[0], resolve_at);
                } else {
                    self.deliver(group[0], resolve_at);
                }
            } else {
                self.collide(key, &group, resolve_at);
            }
            group.clear();
            self.pool.push(group);
        }
    }

    fn deliver(&mut self, packet: Packet, at: Cycle) {
        let lane = packet.class.lane();
        self.stats.delivered[lane] += 1;
        let first_tx = packet
            .first_tx_at
            // lint: allow(P1) deliver() is only reached via transmit, which stamps first_tx_at
            .expect("delivered packets were transmitted");
        // The final transmission started one serialization period (plus
        // any phase-array setup, folded into `at`) before resolution.
        let final_tx_start = Cycle(
            at.as_u64()
                .saturating_sub(self.ser_cycles[lane] + self.cfg.phase_array_setup()),
        );
        let breakdown = LatencyBreakdown {
            queuing: first_tx.saturating_sub(packet.enqueued_at),
            scheduling: packet.scheduling_delay,
            network: at.saturating_sub(final_tx_start.max(first_tx)),
            collision_resolution: final_tx_start.max(first_tx).saturating_sub(first_tx),
        };
        self.stats.latency[lane].record(breakdown.total() as f64);
        self.stats.queuing[lane].record(breakdown.queuing as f64);
        self.stats.scheduling[lane].record(breakdown.scheduling as f64);
        self.stats.network[lane].record(breakdown.network as f64);
        self.stats.resolution[lane].record(breakdown.collision_resolution as f64);
        if packet.retries > 0 {
            self.stats.resolution_when_collided[lane].record(breakdown.collision_resolution as f64);
        }
        self.stats.retries[lane].record(packet.retries as f64);
        trace::emit_with(at, || TraceEvent::Deliver {
            packet: packet.id,
            src: packet.src.0 as u64,
            dst: packet.dst.0 as u64,
            lane: lane as u64,
            queuing: breakdown.queuing,
            scheduling: breakdown.scheduling,
            network: breakdown.network,
            resolution: breakdown.collision_resolution,
            retries: u64::from(packet.retries),
        });
        self.confirmations.send(
            at,
            Confirmation {
                from: packet.dst,
                to: packet.src,
                kind: ConfirmationKind::Receipt {
                    packet_id: packet.id,
                },
            },
        );
        self.delivered.push(Delivered {
            packet,
            delivered_at: at,
            breakdown,
        });
    }

    /// A single packet corrupted by a raw bit error: no confirmation, so
    /// the sender backs off and retries — identical recovery to a
    /// collision, without the collision bookkeeping (no hint: the header
    /// itself may be what broke).
    fn drop_and_retry(&mut self, lane: usize, mut packet: Packet, at: Cycle) {
        let slot = self.slot_len[lane];
        let detect = at + self.cfg.confirmation_delay;
        let next_boundary = detect.round_up_to_slot(slot);
        packet.retries += 1;
        self.stats.retransmissions[lane] += 1;
        trace::emit_with(at, || TraceEvent::BitError {
            packet: packet.id,
            src: packet.src.0 as u64,
            dst: packet.dst.0 as u64,
            lane: lane as u64,
        });
        let draw = self.cfg.backoff.draw(packet.retries, &mut self.rng);
        let ready = next_boundary + (draw.delay_slots - 1) * slot;
        trace::emit_with(at, || TraceEvent::Backoff {
            packet: packet.id,
            lane: lane as u64,
            retry: u64::from(packet.retries),
            delay_slots: draw.delay_slots,
            ready: ready.as_u64(),
        });
        self.nodes[packet.src.0].retries[lane].push(ready, packet);
    }

    fn collide(&mut self, key: GroupKey, group: &[Packet], at: Cycle) {
        let lane = key.lane;
        self.stats.collision_events[lane] += 1;
        self.stats.collided_packets[lane] += group.len() as u64;
        let slot = self.slot_len[lane];
        // Senders detect the collision by the *absence* of a confirmation,
        // `confirmation_delay` cycles after the slot resolved.
        let detect = at + self.cfg.confirmation_delay;
        let next_boundary = detect.round_up_to_slot(slot);

        let winner = if lane == PacketClass::Data.lane() && self.cfg.hints {
            self.select_hint_winner(key.dst, group, next_boundary)
        } else {
            None
        };

        let group_size = group.len() as u64;
        for mut packet in group.iter().copied() {
            packet.retries += 1;
            self.stats.retransmissions[lane] += 1;
            trace::emit_with(at, || TraceEvent::Collide {
                packet: packet.id,
                src: packet.src.0 as u64,
                dst: packet.dst.0 as u64,
                lane: lane as u64,
                rx: key.rx as u64,
                group: group_size,
            });
            let ready = if Some(packet.src) == winner {
                // The winner retransmits in the very next slot.
                next_boundary
            } else if winner.is_some() {
                // Losers skip the winner's slot, then back off.
                let draw = self.cfg.backoff.draw(packet.retries, &mut self.rng);
                let ready = next_boundary + draw.delay_slots * slot;
                trace::emit_with(at, || TraceEvent::Backoff {
                    packet: packet.id,
                    lane: lane as u64,
                    retry: u64::from(packet.retries),
                    delay_slots: draw.delay_slots,
                    ready: ready.as_u64(),
                });
                ready
            } else {
                // No hint: random slot within the back-off window after
                // detection.
                let draw = self.cfg.backoff.draw(packet.retries, &mut self.rng);
                let ready = next_boundary + (draw.delay_slots - 1) * slot;
                trace::emit_with(at, || TraceEvent::Backoff {
                    packet: packet.id,
                    lane: lane as u64,
                    retry: u64::from(packet.retries),
                    delay_slots: draw.delay_slots,
                    ready: ready.as_u64(),
                });
                ready
            };
            self.nodes[packet.src.0].retries[lane].push(ready, packet);
        }
    }

    /// Picks a retransmission winner for a data-lane collision: decode the
    /// OR-ed PID/~PID superset, intersect it with the nodes the receiver
    /// expects data from, and choose one uniformly (§5.2 — "the
    /// notification is only used as a hint").
    fn select_hint_winner(
        &mut self,
        dst: NodeId,
        group: &[Packet],
        next_slot: Cycle,
    ) -> Option<NodeId> {
        let senders: Vec<NodeId> = group.iter().map(|p| p.src).collect();
        let header = HeaderCode::superpose_all(&senders, self.cfg.nodes);
        let superset = header.possible_senders(self.cfg.nodes);
        let expected = &self.nodes[dst.0].expected_data;
        let candidates: Vec<NodeId> = if expected.is_empty() {
            superset.clone()
        } else {
            let filtered: Vec<NodeId> = superset
                .iter()
                .copied()
                .filter(|s| expected.contains(s.0))
                .collect();
            if filtered.is_empty() {
                superset.clone()
            } else {
                filtered
            }
        };
        let winner = *self.rng.choose(&candidates)?;
        self.stats.hints_issued += 1;
        trace::emit_with(next_slot, || TraceEvent::Hint {
            dst: dst.0 as u64,
            winner: winner.0 as u64,
        });
        if senders.contains(&winner) {
            self.stats.hints_correct += 1;
        } else {
            self.stats.hints_wrong += 1;
        }
        self.confirmations.send_at(
            Cycle(next_slot.as_u64().saturating_sub(1)),
            Confirmation {
                from: dst,
                to: winner,
                kind: ConfirmationKind::WinnerHint {
                    slot_start: next_slot,
                },
            },
        );
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::BackoffPolicy;

    fn net16(seed: u64) -> FsoiNetwork {
        FsoiNetwork::new(FsoiConfig::nodes(16), seed)
    }

    fn run_until_idle(net: &mut FsoiNetwork, max: u64) -> Vec<Delivered> {
        let mut out = Vec::new();
        for _ in 0..max {
            net.tick();
            out.extend(net.drain_delivered());
            if net.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_meta_packet_delivers_in_one_slot() {
        let mut net = net16(1);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 7))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 1);
        let d = out[0];
        assert_eq!(d.packet.dst, NodeId(5));
        assert_eq!(d.packet.tag, 7);
        assert_eq!(d.packet.retries, 0);
        // Injected at cycle 0, transmits in slot [0,2), resolves at 2.
        assert_eq!(d.delivered_at, Cycle(2));
        assert_eq!(d.breakdown.network, 2);
        assert_eq!(d.breakdown.queuing, 0);
        assert_eq!(d.breakdown.collision_resolution, 0);
        assert_eq!(d.breakdown.total(), 2);
    }

    #[test]
    fn single_data_packet_takes_five_cycles() {
        let mut net = net16(1);
        net.inject(Packet::new(NodeId(3), NodeId(9), PacketClass::Data, 1))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delivered_at, Cycle(5));
        assert_eq!(out[0].breakdown.network, 5);
    }

    #[test]
    fn non_colliding_packets_all_deliver() {
        let mut net = net16(2);
        // Distinct destinations: no sharing, no collisions.
        for src in 0..8 {
            net.inject(Packet::new(
                NodeId(src),
                NodeId(src + 8),
                PacketClass::Meta,
                src as u64,
            ))
            .unwrap();
        }
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|d| d.packet.retries == 0));
        assert_eq!(net.stats().collision_events[0], 0);
    }

    #[test]
    fn same_receiver_same_slot_collides_and_recovers() {
        let mut net = net16(3);
        // Nodes 0 and 2 share receiver 0 at node 5 (ranks 0 and 2, mod 2).
        assert_eq!(receiver_index(NodeId(0), NodeId(5), 16, 2), 0);
        assert_eq!(receiver_index(NodeId(2), NodeId(5), 16, 2), 0);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Meta, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 500);
        assert_eq!(out.len(), 2, "both packets eventually deliver");
        // At least the initial collision; secondary collisions are possible
        // when both back-offs draw the same slot.
        assert!(net.stats().collision_events[0] >= 1);
        assert!(net.stats().collided_packets[0] >= 2);
        assert!(out.iter().all(|d| d.packet.retries >= 1));
        assert!(out.iter().any(|d| d.breakdown.collision_resolution > 0));
    }

    #[test]
    fn different_receivers_do_not_collide() {
        let mut net = net16(4);
        // Nodes 0 and 1 use different receivers at node 5 (ranks 0, 1).
        assert_ne!(
            receiver_index(NodeId(0), NodeId(5), 16, 2),
            receiver_index(NodeId(1), NodeId(5), 16, 2)
        );
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(1), NodeId(5), PacketClass::Meta, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().collision_events[0], 0);
        assert!(out.iter().all(|d| d.packet.retries == 0));
    }

    #[test]
    fn different_slots_do_not_collide() {
        let mut net = net16(5);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        // Let the first packet fully transmit before injecting the second.
        net.tick();
        net.tick();
        net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Meta, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().collision_events[0], 0);
    }

    #[test]
    fn meta_and_data_lanes_are_independent() {
        let mut net = net16(6);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Data, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().collision_events, [0, 0]);
    }

    #[test]
    fn queue_overflow_rejects() {
        let mut net = net16(7);
        let mut accepted = 0;
        for i in 0..20 {
            if net
                .inject(Packet::new(NodeId(0), NodeId(1), PacketClass::Meta, i))
                .is_ok()
            {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 8, "Table 3: 8-packet outgoing queues");
        assert_eq!(net.stats().rejected[0], 12);
        let out = run_until_idle(&mut net, 500);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn back_to_back_packets_pipeline_in_slots() {
        let mut net = net16(8);
        for i in 0..4 {
            net.inject(Packet::new(NodeId(0), NodeId(1), PacketClass::Meta, i))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 4);
        let mut times: Vec<u64> = out.iter().map(|d| d.delivered_at.as_u64()).collect();
        times.sort_unstable();
        assert_eq!(times, vec![2, 4, 6, 8], "one delivery per meta slot");
        // Later packets accrue queuing delay, never collision delay.
        assert!(out.iter().all(|d| d.breakdown.collision_resolution == 0));
        let max_queue = out.iter().map(|d| d.breakdown.queuing).max().unwrap();
        assert_eq!(max_queue, 6);
    }

    #[test]
    fn point_to_point_ordering_preserved_without_collisions() {
        let mut net = net16(9);
        for i in 0..5 {
            net.inject(Packet::new(NodeId(4), NodeId(11), PacketClass::Meta, i))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 100);
        let tags: Vec<u64> = out.iter().map(|d| d.packet.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4], "FIFO per source-destination");
    }

    #[test]
    fn phase_array_adds_setup_on_retarget() {
        let cfg = FsoiConfig::nodes(64);
        let mut net = FsoiNetwork::new(cfg, 10);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        // Resolution at slot end + 1 cycle of phase-array setup.
        assert_eq!(out[0].delivered_at, Cycle(3));
    }

    #[test]
    fn phase_array_no_setup_for_repeat_target() {
        let cfg = FsoiConfig::nodes(64);
        let mut net = FsoiNetwork::new(cfg, 11);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 2);
        // Both resolve at (slot end + pa setup) of their slots; the second
        // packet needed no retarget, so its tx wasn't lengthened — but
        // resolution timing is uniform per slot.
        let retargets: u64 = 1; // only the first aims anew
        assert_eq!(net.nodes[0].steering[0].retargets(), retargets);
    }

    #[test]
    fn hint_winner_retransmits_next_slot() {
        // Force a data collision with expectations registered: winner
        // should recover with minimal delay.
        let cfg = FsoiConfig::nodes(16); // hints on by default
        let mut net = FsoiNetwork::new(cfg, 12);
        // Receiver 5 expects data from 0 and 2 (both receiver 0).
        net.expect_data(NodeId(5), NodeId(0));
        net.expect_data(NodeId(5), NodeId(2));
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Data, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Data, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 500);
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().hints_issued, 1);
        assert_eq!(net.stats().hints_correct, 1, "both candidates are real");
        // Collision resolved at 5, detected at 7, winner's slot starts at
        // 10, so the winner delivers at 15.
        let first = out.iter().map(|d| d.delivered_at.as_u64()).min().unwrap();
        assert_eq!(first, 15);
    }

    #[test]
    fn hints_disabled_uses_pure_backoff() {
        let cfg = FsoiConfig::nodes(16).with_hints(false);
        let mut net = FsoiNetwork::new(cfg, 13);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Data, 1))
            .unwrap();
        net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Data, 2))
            .unwrap();
        let out = run_until_idle(&mut net, 1000);
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().hints_issued, 0);
    }

    #[test]
    fn expected_data_registry_updates() {
        let mut net = net16(14);
        net.expect_data(NodeId(3), NodeId(7));
        assert!(net.nodes[3].expected_data.contains(7));
        net.clear_expected(NodeId(3), NodeId(7));
        assert!(!net.nodes[3].expected_data.contains(7));
    }

    #[test]
    fn confirmations_counted_per_delivery() {
        let mut net = net16(15);
        for src in 0..4 {
            net.inject(Packet::new(
                NodeId(src),
                NodeId(15 - src),
                PacketClass::Meta,
                0,
            ))
            .unwrap();
        }
        run_until_idle(&mut net, 100);
        assert_eq!(net.confirmations_sent(), 4);
    }

    #[test]
    fn heavy_contention_eventually_drains() {
        // All 15 nodes send one meta packet to node 0 at the same time —
        // a small version of the pathological burst.
        let mut net = net16(16);
        for src in 1..16 {
            net.inject(Packet::new(NodeId(src), NodeId(0), PacketClass::Meta, 0))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 20_000);
        assert_eq!(out.len(), 15, "exponential back-off must drain the burst");
        assert!(net.stats().collision_events[0] > 0);
    }

    #[test]
    fn binary_backoff_also_drains_but_slower_tail() {
        let cfg = FsoiConfig::nodes(16).with_backoff(BackoffPolicy::BINARY);
        let mut net = FsoiNetwork::new(cfg, 17);
        for src in 1..16 {
            net.inject(Packet::new(NodeId(src), NodeId(0), PacketClass::Meta, 0))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 50_000);
        assert_eq!(out.len(), 15);
    }

    #[test]
    fn stats_probability_and_collision_rate() {
        let mut net = net16(18);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        run_until_idle(&mut net, 20);
        let slots = net.slots_elapsed(PacketClass::Meta);
        let p = net.stats().transmission_probability(0, 16, slots);
        assert!(p > 0.0 && p < 1.0);
        assert_eq!(net.stats().collision_rate(0), 0.0);
        assert_eq!(net.stats().collision_rate(1), 0.0);
    }

    #[test]
    fn stats_rates_never_nan_on_degenerate_configs() {
        // Fresh network: zero slots elapsed, nothing transmitted.
        let net = net16(30);
        let s = net.stats();
        for lane in 0..2 {
            assert_eq!(s.transmission_probability(lane, 16, 0), 0.0, "zero slots");
            assert_eq!(s.transmission_probability(lane, 0, 5), 0.0, "zero nodes");
            assert_eq!(s.transmission_probability(lane, 0, 0), 0.0, "both zero");
            assert_eq!(s.collision_rate(lane), 0.0, "no transmissions yet");
        }
        // Even with traffic recorded, a zero-node denominator must not
        // poison the result with inf/NaN.
        let mut net = net16(31);
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
            .unwrap();
        run_until_idle(&mut net, 20);
        let s = net.stats();
        assert!(s.transmissions[0] > 0);
        assert_eq!(s.transmission_probability(0, 0, 5), 0.0);
        assert!(s.transmission_probability(0, 16, 5).is_finite());
        assert!(s.collision_rate(0).is_finite());
    }

    #[test]
    fn stats_export_matches_fields() {
        let mut net = net16(32);
        for src in 1..8 {
            net.inject(Packet::new(NodeId(src), NodeId(0), PacketClass::Meta, 0))
                .unwrap();
        }
        run_until_idle(&mut net, 20_000);
        let mut reg = Registry::new();
        net.stats().export(&mut reg);
        let meta: [(&str, &str); 1] = [("lane", "meta")];
        assert_eq!(reg.counter("net.injected", &meta), net.stats().injected[0]);
        assert_eq!(reg.counter("net.delivered", &meta), 7);
        assert_eq!(
            reg.counter("net.collided_packets", &meta),
            net.stats().collided_packets[0]
        );
        assert_eq!(
            reg.gauge_value("net.collision_rate", &meta),
            Some(net.stats().collision_rate(0))
        );
        // Deterministic export: same stats, same bytes.
        let mut again = Registry::new();
        net.stats().export(&mut again);
        assert_eq!(reg.to_jsonl(), again.to_jsonl());
    }

    #[test]
    #[should_panic(expected = "no self-injection")]
    fn self_injection_panics() {
        let mut net = net16(19);
        let _ = net.inject(Packet::new(NodeId(3), NodeId(3), PacketClass::Meta, 0));
    }

    #[test]
    fn is_idle_tracks_lifecycle() {
        let mut net = net16(20);
        assert!(net.is_idle());
        net.inject(Packet::new(NodeId(0), NodeId(1), PacketClass::Meta, 0))
            .unwrap();
        assert!(!net.is_idle());
        run_until_idle(&mut net, 50);
        assert!(net.is_idle());
    }

    #[test]
    fn bit_errors_recover_via_retransmission() {
        // At a deliberately brutal BER of 1e-3 a 360-bit data packet is
        // corrupted ~30% of the time; every packet must still arrive, via
        // the same back-off machinery collisions use.
        let cfg = FsoiConfig::nodes(16).with_bit_error_rate(1e-3);
        let mut net = FsoiNetwork::new(cfg, 21);
        for i in 0..40u64 {
            // Disjoint pairs: no collisions possible, only bit errors.
            let src = (i % 8) as usize;
            net.inject(Packet::new(
                NodeId(src),
                NodeId(src + 8),
                PacketClass::Data,
                i,
            ))
            .unwrap_or_else(|_| panic!("queue full at {i}"));
            for _ in 0..10 {
                net.tick();
            }
        }
        let out = run_until_idle(&mut net, 20_000);
        let total = out.len() + net.drain_delivered().len();
        assert_eq!(net.stats().collision_events, [0, 0], "no collisions here");
        assert!(
            net.stats().bit_error_drops[1] > 0,
            "errors must have struck"
        );
        assert_eq!(net.stats().delivered[1], 40, "all packets recovered");
        let _ = total;
    }

    #[test]
    fn paper_default_ber_is_invisible() {
        // At the paper's 1e-10 link BER, thousands of packets see no drop.
        let mut net = net16(22);
        for i in 0..500u64 {
            let src = (i % 8) as usize;
            let _ = net.inject(Packet::new(
                NodeId(src),
                NodeId(src + 8),
                PacketClass::Meta,
                i,
            ));
            net.tick();
            net.tick();
            net.drain_delivered();
        }
        run_until_idle(&mut net, 5_000);
        assert_eq!(net.stats().bit_error_drops, [0, 0]);
    }

    #[test]
    fn one_resolution_event_per_slot_group() {
        // Three senders sharing receiver 0 at node 5 collide in slot 0:
        // the heap must carry one event for the group, not one per packet.
        let mut net = net16(40);
        for src in [0usize, 2, 4] {
            assert_eq!(receiver_index(NodeId(src), NodeId(5), 16, 2), 0);
            net.inject(Packet::new(NodeId(src), NodeId(5), PacketClass::Meta, 0))
                .unwrap();
        }
        net.tick(); // cycle 0: all three transmit into the same slot group
        assert_eq!(net.slots[0].live, 1, "one live group");
        assert_eq!(
            net.resolutions.len(),
            net.slots[0].live,
            "heap length tracks group count, not packet count"
        );
        let out = run_until_idle(&mut net, 20_000);
        assert_eq!(out.len(), 3, "the burst still drains");
        assert!(net.stats().collision_events[0] >= 1);
    }

    #[test]
    fn slot_group_buffers_are_pooled() {
        let mut net = net16(41);
        for i in 0..4 {
            net.inject(Packet::new(NodeId(0), NodeId(1), PacketClass::Meta, i))
                .unwrap();
        }
        run_until_idle(&mut net, 100);
        assert!(
            !net.pool.is_empty(),
            "resolved groups return their buffers to the free-list"
        );
        assert_eq!(net.slots[0].live, 0);
    }

    #[test]
    fn next_event_at_tracks_pending_work() {
        let mut net = net16(42);
        assert_eq!(net.next_event_at(), None, "quiet network has no events");
        net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 0))
            .unwrap();
        // Queued work at cycle 0, which is a slot boundary.
        assert_eq!(net.next_event_at(), Some(Cycle(0)));
        net.tick();
        // In flight: the slot resolves at cycle 2.
        assert_eq!(net.next_event_at(), Some(Cycle(2)));
        net.tick();
        net.tick();
        // Delivered at 2; only the receipt confirmation (due 4) remains.
        assert_eq!(net.delivered_count(), 1);
        assert_eq!(net.next_event_at(), Some(Cycle(4)));
        net.run(10);
        assert_eq!(net.next_event_at(), None);
    }

    #[test]
    fn fast_forward_matches_cycle_by_cycle() {
        // The same contended workload driven by tick() and by run() must
        // land on identical deliveries, stats exports, and clock.
        let drive = |fast: bool| {
            let mut net = net16(43);
            for src in 1..16 {
                net.expect_data(NodeId(src), NodeId(0));
                net.inject(Packet::new(NodeId(src), NodeId(0), PacketClass::Data, 0))
                    .unwrap();
            }
            if fast {
                net.run(20_000);
            } else {
                for _ in 0..20_000 {
                    net.tick();
                }
            }
            let delivered: Vec<(u64, usize, u64)> = net
                .drain_delivered()
                .iter()
                .map(|d| (d.packet.id, d.packet.src.0, d.delivered_at.as_u64()))
                .collect();
            let mut reg = Registry::new();
            net.stats().export(&mut reg);
            (delivered, reg.to_jsonl(), net.now())
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = net16(seed);
            for src in 1..16 {
                net.inject(Packet::new(NodeId(src), NodeId(0), PacketClass::Meta, 0))
                    .unwrap();
            }
            run_until_idle(&mut net, 20_000)
                .iter()
                .map(|d| (d.packet.src.0, d.delivered_at.as_u64()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should reorder the burst");
    }
}
