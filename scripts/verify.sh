#!/usr/bin/env sh
# Tier-1 verification gate, hermetic by construction: the workspace has no
# external dependencies, so --offline proves no network is ever consulted.
# Bench targets are feature-gated (`criterion`) and stay out of both steps.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Determinism & invariant lints (DESIGN.md "Determinism policy"): the
# committed tree must scan clean — zero D1/D2/T1/P1/A1 violations, every
# escape hatch annotated. Exit 1 here means a new violation crept in.
cargo run -q --release --offline -p fsoi-lint -- check

# The structured-trace event API must also build compiled-in on release
# (debug builds always carry it; plain release compiles it out).
cargo build --release --offline --workspace --features trace

# Microbench guard: tick() throughput with tracing disabled must stay
# within noise of a plain release build. The emit sites compile out
# entirely without the `trace` feature, so this run *is* the baseline —
# the bench exists so the trace-feature cost is one command away:
#   cargo bench -p fsoi-bench --features criterion,trace --bench trace_overhead
cargo bench -q --offline -p fsoi-bench --features criterion --bench trace_overhead
