//! Quickstart: beam packets across a 16-node free-space optical
//! interconnect, watch a collision happen and resolve, and read the
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fsoi::net::config::FsoiConfig;
use fsoi::net::network::FsoiNetwork;
use fsoi::net::packet::{Packet, PacketClass};
use fsoi::net::topology::{receiver_index, NodeId};

fn main() {
    // The paper's default 16-node configuration: 3-VCSEL meta lanes,
    // 6-VCSEL data lanes, 2 receivers per lane class, W = 2.7 / B = 1.1
    // exponential back-off, 2-cycle confirmations.
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 42);

    // A clean transfer: node 0 beams a data packet straight at node 9.
    // No routing, no arbitration — the beam is the wire.
    net.inject(Packet::new(NodeId(0), NodeId(9), PacketClass::Data, 0xCAFE))
        .expect("queues are empty");
    while net.delivered_count() == 0 {
        net.tick();
    }
    let d = net.drain_delivered().remove(0);
    println!(
        "clean transfer : node 0 → node 9 in {} cycles (tag {:#x}, {} retries)",
        d.breakdown.total(),
        d.packet.tag,
        d.packet.retries
    );

    // Now force a collision: nodes 0 and 2 share receiver 0 at node 5
    // (the 15 potential senders are dealt round-robin over 2 receivers),
    // and both transmit in the same slot. The receiver sees the OR of the
    // two light pulses; the PID/~PID header exposes the corruption; both
    // senders miss their confirmations and back off.
    assert_eq!(receiver_index(NodeId(0), NodeId(5), 16, 2), 0);
    assert_eq!(receiver_index(NodeId(2), NodeId(5), 16, 2), 0);
    net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Meta, 1))
        .unwrap();
    net.inject(Packet::new(NodeId(2), NodeId(5), PacketClass::Meta, 2))
        .unwrap();
    let mut delivered = Vec::new();
    while delivered.len() < 2 {
        net.tick();
        delivered.extend(net.drain_delivered());
    }
    for d in &delivered {
        println!(
            "collided packet: {} → node 5, {} retries, resolved in {} cycles total",
            d.packet.src,
            d.packet.retries,
            d.breakdown.total()
        );
    }

    let s = net.stats();
    println!("\nnetwork statistics");
    println!(
        "  transmissions (meta/data) : {} / {}",
        s.transmissions[0], s.transmissions[1]
    );
    println!(
        "  collision events          : {}",
        s.collision_events[0] + s.collision_events[1]
    );
    println!(
        "  retransmissions           : {}",
        s.retransmissions[0] + s.retransmissions[1]
    );
    println!("  confirmations beamed      : {}", net.confirmations_sent());
}
