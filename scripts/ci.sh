#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the same four tiers, in the
# same order, with the same commands — green here means green in CI.
#
# Usage:
#   scripts/ci.sh                 # all tiers in order: quick lint full bench
#   scripts/ci.sh --tier quick    # fmt check + build + test
#   scripts/ci.sh --tier lint     # fsoi-lint check + clippy
#   scripts/ci.sh --tier full     # scripts/verify.sh (incl. trace build + microbench guard)
#   scripts/ci.sh --tier bench    # scripts/bench_gate.sh vs the committed baseline
set -eu
cd "$(dirname "$0")/.."

TIER=all
while [ $# -gt 0 ]; do
    case "$1" in
        --tier) TIER=$2; shift 2 ;;
        *) echo "ci.sh: unknown argument $1 (usage: ci.sh [--tier quick|lint|full|bench|all])" >&2; exit 2 ;;
    esac
done

banner() {
    echo
    echo "=================================================================="
    echo "ci tier: $1"
    echo "=================================================================="
}

tier_quick() {
    banner quick
    cargo fmt --all --check
    cargo build --offline --workspace
    cargo test -q --offline --workspace
    # Cache smoke: the FSOI_CACHE knob end-to-end (fill, hit, tamper,
    # corrupt-fallback). Already part of the workspace test run above —
    # repeated by name so a cell-cache regression fails a step that says
    # "cell_cache", and so this tier keeps covering it if the workspace
    # test set is ever filtered.
    cargo test -q --offline -p fsoi-bench --test cell_cache
}

tier_lint() {
    banner lint
    cargo run -q --release --offline -p fsoi-lint -- check
    # [workspace.lints] (deny unused_must_use, clippy disallowed_types)
    # applies to every target, including feature-gated benches.
    cargo clippy --offline --workspace --all-targets --features criterion -- -D warnings
}

tier_full() {
    banner full
    scripts/verify.sh
}

tier_bench() {
    banner bench
    scripts/bench_gate.sh
    # Observability: emit the run manifest (deterministic spans + executor
    # telemetry) for this run; CI uploads target/RUN_manifest.json as an
    # artifact so a regression investigation starts from real numbers.
    cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        profile --out target/RUN_manifest.json --det target/RUN_det.txt
}

case "$TIER" in
    quick) tier_quick ;;
    lint)  tier_lint ;;
    full)  tier_full ;;
    bench) tier_bench ;;
    all)
        tier_quick
        tier_lint
        tier_full
        tier_bench
        ;;
    *) echo "ci.sh: unknown tier '$TIER' (quick|lint|full|bench|all)" >&2; exit 2 ;;
esac

echo
echo "ci.sh: tier '$TIER' PASSED"
