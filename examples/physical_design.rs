//! Physical-design checks behind the architecture (§3.3 and footnote 2):
//! chip-wide path skew and its serializer-padding compensation, the
//! microchannel cooling budget, VCSEL behaviour at the resulting junction
//! temperature, and the Corona-style crossbar comparison.
//!
//! ```text
//! cargo run --release --example physical_design
//! ```

use fsoi::cmp::configs::{NetworkKind, SystemConfig};
use fsoi::cmp::system::CmpSystem;
use fsoi::cmp::workload::AppProfile;
use fsoi::net::skew::{compensation, max_padding_bits, Floorplan};
use fsoi::net::topology::NodeId;
use fsoi::optics::thermal::{MicrochannelLoop, VcselThermalModel};
use fsoi::optics::units::Power;

fn main() {
    // --- Footnote 2: path skew and padding -----------------------------
    let plan = Floorplan::paper_16();
    println!("free-space path geometry (16-node, 2 cm-class die)");
    println!(
        "  longest flight (diagonal)   : {:.1} ps",
        plan.max_flight_time_ps()
    );
    println!(
        "  chip-wide skew              : {:.1} ps",
        plan.max_skew_ps()
    );
    println!(
        "  worst-case padding          : {} optical bits (paper: ~3 communication cycles)",
        max_padding_bits(&plan, 25.0)
    );
    let c = compensation(&plan, NodeId(0), NodeId(1), 25.0);
    println!(
        "  neighbour pair (0→1)        : {} padding bits + {:.1} ps delay line",
        c.padding_bits, c.delay_line_ps
    );

    // --- §3.3: cooling the 3-D stack ------------------------------------
    let cooling = MicrochannelLoop::paper_default();
    println!("\nmicrochannel liquid cooling");
    println!(
        "  loop capacity               : {:.0} W",
        cooling.cooling_capacity().as_watts()
    );
    for (label, watts) in [
        ("FSOI system (121 W)", 121.0),
        ("mesh baseline (156 W)", 156.0),
    ] {
        let t = cooling.junction_temperature_c(Power::from_watts(watts));
        let margin = cooling.check(Power::from_watts(watts)).expect("fits");
        println!("  {label:<27}: junction {t:.0} °C, margin {margin:.0} W");
    }
    let thermal = VcselThermalModel::paper_default();
    let t_hot = cooling.junction_temperature_c(Power::from_watts(121.0));
    println!(
        "  VCSEL threshold at {t_hot:.0} °C    : {:.2}× design (output {:.2}×)",
        thermal.threshold_multiplier(t_hot),
        thermal.output_multiplier(t_hot, 0.48 / 0.14)
    );

    // --- §7.1: the Corona-style comparison ------------------------------
    println!("\nFSOI vs Corona-style WDM token-ring crossbar (64 nodes, three apps)");
    println!(
        "  {:<6} {:>10} {:>10} {:>8}",
        "app", "fsoi cyc", "ring cyc", "ratio"
    );
    let mut ratios = Vec::new();
    for name in ["ba", "fft", "mp"] {
        let mut app = AppProfile::by_name(name).expect("known app");
        app.ops_per_core = 400;
        let fsoi = CmpSystem::new(SystemConfig::paper_64(NetworkKind::fsoi(64)), app)
            .run(50_000_000)
            .cycles;
        let ring = CmpSystem::new(SystemConfig::paper_64(NetworkKind::ring(64)), app)
            .run(50_000_000)
            .cycles;
        let ratio = ring as f64 / fsoi as f64;
        ratios.push(ratio);
        println!("  {name:<6} {fsoi:>10} {ring:>10} {ratio:>8.3}");
    }
    let mean = ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / ratios.len() as f64);
    println!("  geomean {mean:.2}  (paper: \"1.06 times faster than a corona-style design\")");
}
