//! Physical-layer exploration: rebuild the paper's Table 1 link budget
//! from device physics, then sweep design parameters to see where the
//! link stops closing.
//!
//! ```text
//! cargo run --release --example link_budget
//! ```

use fsoi::optics::gaussian::GaussianBeam;
use fsoi::optics::link::OpticalLink;
use fsoi::optics::noise;
use fsoi::optics::path::{OpticalPath, PathElement};
use fsoi::optics::photodetector::Photodetector;
use fsoi::optics::tia::Tia;
use fsoi::optics::units::{Frequency, Length};
use fsoi::optics::vcsel::Vcsel;

fn main() {
    // The paper's diagonal worst case: 2 cm at 980 nm through two
    // micro-mirrors, 90 µm transmit and 190 µm receive micro-lenses.
    let link = OpticalLink::paper_default();
    let budget = link.budget();
    println!("Table 1 — computed link budget");
    for (label, value) in budget.table1_rows() {
        println!("  {label:<24} {value}");
    }

    // Where does the 2.6 dB go? Mostly diffraction: the beam grows from
    // its 45 µm waist to ~146 µm over 2 cm, and the 95 µm receive
    // aperture clips it.
    let beam = link.beam();
    let w = beam.radius_at(Length::from_millimeters(20.0));
    println!(
        "\nbeam radius after 2 cm      : {:.1} µm",
        w.to_micrometers()
    );
    println!(
        "surface (mirror/lens) loss  : {:.2} dB",
        link.path().surface_loss().db()
    );
    println!(
        "diffraction (clipping) loss : {:.2} dB",
        link.path().clipping_loss(&beam).db()
    );

    // The collision-tolerant architecture can relax BER from 1e-10 to
    // ~1e-5 (§4.3.1): quantify the margin that frees.
    println!(
        "\nQ required for BER 1e-10    : {:.2}",
        noise::ber_to_q(1e-10)
    );
    println!(
        "Q required for BER 1e-5     : {:.2}  (the paper's relaxed target)",
        noise::ber_to_q(1e-5)
    );
    println!("Q achieved                  : {:.2}", budget.q_factor);

    // Sweep the flight distance: how far can this transmitter reach
    // before the budget stops closing at the relaxed target?
    println!("\ndistance sweep (BER at each flight length)");
    for mm in [5.0, 10.0, 20.0, 30.0, 40.0, 60.0] {
        let mut path = OpticalPath::new(Length::from_micrometers(95.0)).expect("valid aperture");
        path.push(PathElement::LensSurface {
            transmission: 0.995,
        })
        .unwrap();
        path.push(PathElement::Mirror { reflectivity: 0.98 })
            .unwrap();
        path.push(PathElement::FreeSpace(Length::from_millimeters(mm)))
            .unwrap();
        path.push(PathElement::Mirror { reflectivity: 0.98 })
            .unwrap();
        path.push(PathElement::LensSurface {
            transmission: 0.995,
        })
        .unwrap();
        let link = OpticalLink::new(
            Vcsel::paper_default(),
            Photodetector::paper_default(),
            Tia::paper_default(),
            path,
            Length::from_micrometers(90.0),
            Length::from_nanometers(980.0),
            Frequency::from_ghz(40.0),
            Frequency::from_ghz(43.0),
        );
        let b = link.budget();
        let closes = link.validate(1e-5).is_ok();
        println!(
            "  {mm:>4.0} mm : loss {:>5.2} dB, Q {:>5.2}, BER {:>9.2e}  {}",
            b.path_loss_db,
            b.q_factor,
            b.bit_error_rate,
            if closes {
                "closes at 1e-5"
            } else {
                "DOES NOT CLOSE"
            }
        );
    }

    // Bigger receive lenses buy link margin at the cost of receiver pitch.
    println!("\nreceive-aperture sweep at 2 cm");
    for aperture_um in [120.0, 190.0, 260.0, 330.0] {
        let radius = Length::from_micrometers(aperture_um / 2.0);
        let t = GaussianBeam::clip_transmission(w, radius);
        println!(
            "  {aperture_um:>4.0} µm lens : captures {:>5.1}% of the beam ({:.2} dB)",
            100.0 * t,
            -10.0 * t.log10()
        );
    }
}
