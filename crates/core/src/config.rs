//! Network configuration.

use crate::backoff::BackoffPolicy;
use crate::lane::Lanes;
use fsoi_sim::det::NodeMask;

/// A rejected network configuration, carrying the offending value.
///
/// Node-count limits are enforced here, at construction time, instead of
/// surfacing later as `NodeMask` capacity asserts deep inside a running
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than two nodes — there is nobody to talk to.
    TooFewNodes {
        /// The requested node count.
        nodes: usize,
    },
    /// More nodes than the dense per-node bitmask tracking supports.
    TooManyNodes {
        /// The requested node count.
        nodes: usize,
        /// The hard capacity ([`NodeMask::CAPACITY`]).
        capacity: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::TooFewNodes { nodes } => {
                write!(f, "a network needs at least two nodes (got {nodes})")
            }
            ConfigError::TooManyNodes { nodes, capacity } => write!(
                f,
                "{nodes} nodes exceed the NodeMask capacity of {capacity} \
                 (sharer/subscription tracking uses dense per-node bitmasks)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How each node aims its beams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitterArray {
    /// One dedicated VCSEL lane per destination (small/medium systems;
    /// the paper's 16-node configuration).
    Dedicated,
    /// A single optical phase array steered per destination, paying a
    /// retarget penalty when consecutive packets go to different nodes
    /// (the paper's 64-node configuration, 1-cycle setup).
    PhaseArray {
        /// Cycles to re-set the phase controller register.
        setup_cycles: u64,
    },
}

/// Full configuration of an [`FsoiNetwork`](crate::network::FsoiNetwork).
#[derive(Debug, Clone, PartialEq)]
pub struct FsoiConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Lane widths and timing.
    pub lanes: Lanes,
    /// Transmitter organization.
    pub array: TransmitterArray,
    /// Retransmission policy.
    pub backoff: BackoffPolicy,
    /// Fixed delay from clean reception to confirmation arrival at the
    /// sender (paper: cycle `n + 2`).
    pub confirmation_delay: u64,
    /// Capacity of each outgoing packet queue (Table 3: 8 per lane).
    pub outgoing_queue_capacity: usize,
    /// Enable receiver-coordinated retransmission hints on the data lane
    /// (§5.2).
    pub hints: bool,
    /// Enable receiver-side reply-slot reservation / request spacing
    /// (§5.2).
    pub request_spacing: bool,
    /// Raw bit error rate of the signaling chain. Corrupted packets are
    /// detected by the receiver (checksum), draw no confirmation, and are
    /// retransmitted exactly like collision victims — the paper's point
    /// that "errors and collisions \[are\] handled by the same mechanism"
    /// (§4.3.1), which is what lets the BER target relax from 1e-10 to
    /// ~1e-5.
    pub bit_error_rate: f64,
}

impl FsoiConfig {
    /// The paper's default configuration for `n` nodes: Table 3 lanes,
    /// `W = 2.7, B = 1.1` back-off, 2-cycle confirmation, 8-packet queues,
    /// both data-lane optimizations on, and a phase-array transmitter for
    /// systems larger than 16 nodes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is out of range; [`FsoiConfig::try_nodes`] is the
    /// non-panicking variant.
    pub fn nodes(n: usize) -> Self {
        match Self::try_nodes(n) {
            Ok(cfg) => cfg,
            // lint: allow(P1) infallible-constructor convenience; callers with untrusted n use try_nodes
            Err(e) => panic!("{e}"),
        }
    }

    /// [`FsoiConfig::nodes`], but validating the node count instead of
    /// panicking: `n` must be at least 2 and at most
    /// [`NodeMask::CAPACITY`] (sharer sets, subscription hubs and
    /// directory masks all track nodes in dense bitmasks of that
    /// capacity, and a violation would otherwise only surface as an
    /// assert deep inside a running simulation).
    pub fn try_nodes(n: usize) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::TooFewNodes { nodes: n });
        }
        if n > NodeMask::CAPACITY {
            return Err(ConfigError::TooManyNodes {
                nodes: n,
                capacity: NodeMask::CAPACITY,
            });
        }
        Ok(FsoiConfig {
            nodes: n,
            lanes: Lanes::paper_default(),
            array: if n > 16 {
                TransmitterArray::PhaseArray { setup_cycles: 1 }
            } else {
                TransmitterArray::Dedicated
            },
            backoff: BackoffPolicy::PAPER_OPTIMUM,
            confirmation_delay: 2,
            outgoing_queue_capacity: 8,
            hints: true,
            request_spacing: true,
            bit_error_rate: 1e-10,
        })
    }

    /// Builder-style: replaces the lane configuration.
    pub fn with_lanes(mut self, lanes: Lanes) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builder-style: replaces the back-off policy.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Builder-style: forces the transmitter organization.
    pub fn with_array(mut self, array: TransmitterArray) -> Self {
        self.array = array;
        self
    }

    /// Builder-style: toggles the data-lane hint optimization.
    pub fn with_hints(mut self, on: bool) -> Self {
        self.hints = on;
        self
    }

    /// Builder-style: toggles request spacing.
    pub fn with_request_spacing(mut self, on: bool) -> Self {
        self.request_spacing = on;
        self
    }

    /// Builder-style: sets the raw signaling bit error rate.
    ///
    /// # Panics
    ///
    /// Panics unless `ber` is in `[0, 0.1]`.
    pub fn with_bit_error_rate(mut self, ber: f64) -> Self {
        assert!(
            (0.0..=0.1).contains(&ber),
            "BER must be a small probability"
        );
        self.bit_error_rate = ber;
        self
    }

    /// Probability a packet of `bits` bits arrives corrupted at this BER.
    pub fn packet_error_probability(&self, bits: usize) -> f64 {
        1.0 - (1.0 - self.bit_error_rate).powi(bits as i32)
    }

    /// The phase-array setup penalty, or 0 for dedicated lanes.
    pub fn phase_array_setup(&self) -> u64 {
        match self.array {
            TransmitterArray::Dedicated => 0,
            TransmitterArray::PhaseArray { setup_cycles } => setup_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketClass;

    #[test]
    fn sixteen_nodes_use_dedicated_lanes() {
        let c = FsoiConfig::nodes(16);
        assert_eq!(c.array, TransmitterArray::Dedicated);
        assert_eq!(c.phase_array_setup(), 0);
        assert_eq!(c.confirmation_delay, 2);
        assert_eq!(c.outgoing_queue_capacity, 8);
        assert!(c.hints && c.request_spacing);
        assert!((c.bit_error_rate - 1e-10).abs() < 1e-20);
    }

    #[test]
    fn packet_error_probability_scales_with_length() {
        let c = FsoiConfig::nodes(16).with_bit_error_rate(1e-5);
        let meta = c.packet_error_probability(72);
        let data = c.packet_error_probability(360);
        assert!((meta - 72.0 * 1e-5).abs() < 1e-6, "small-BER linearization");
        assert!(data > meta);
        let clean = FsoiConfig::nodes(16).with_bit_error_rate(0.0);
        assert_eq!(clean.packet_error_probability(360), 0.0);
    }

    #[test]
    fn sixty_four_nodes_use_phase_array() {
        let c = FsoiConfig::nodes(64);
        assert_eq!(c.array, TransmitterArray::PhaseArray { setup_cycles: 1 });
        assert_eq!(c.phase_array_setup(), 1);
    }

    #[test]
    fn builders_apply() {
        let c = FsoiConfig::nodes(16)
            .with_hints(false)
            .with_request_spacing(false)
            .with_backoff(BackoffPolicy::BINARY)
            .with_array(TransmitterArray::PhaseArray { setup_cycles: 2 })
            .with_lanes(Lanes::fig11_base());
        assert!(!c.hints && !c.request_spacing);
        assert_eq!(c.backoff, BackoffPolicy::BINARY);
        assert_eq!(c.phase_array_setup(), 2);
        assert_eq!(c.lanes.serialization_cycles(PacketClass::Meta), 1);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn one_node_panics() {
        FsoiConfig::nodes(1);
    }

    #[test]
    fn try_nodes_reports_the_offending_count() {
        assert_eq!(
            FsoiConfig::try_nodes(1),
            Err(ConfigError::TooFewNodes { nodes: 1 })
        );
        assert_eq!(
            FsoiConfig::try_nodes(300),
            Err(ConfigError::TooManyNodes {
                nodes: 300,
                capacity: 256
            })
        );
        let msg = FsoiConfig::try_nodes(300).unwrap_err().to_string();
        assert!(msg.contains("300") && msg.contains("256"), "{msg}");
        assert!(FsoiConfig::try_nodes(2).is_ok());
        // The multi-word mask admits the 256-node design-space grids that
        // the old u128 representation rejected.
        assert!(FsoiConfig::try_nodes(200).is_ok());
        assert!(FsoiConfig::try_nodes(256).is_ok());
    }

    #[test]
    #[should_panic(expected = "NodeMask capacity of 256")]
    fn oversized_network_panics_at_construction_not_mid_run() {
        FsoiConfig::nodes(257);
    }
}
