//! A deterministic registry of named, labelled metrics.
//!
//! The workspace's measurement code grew ad-hoc `Counter`, [`Summary`] and
//! [`Histogram`] fields scattered across structs; every report then
//! hand-formatted its own numbers. The [`Registry`] unifies them behind
//! `name{label=value}` keys with two deterministic export paths — JSONL
//! ([`Registry::to_jsonl`]) and an aligned human-readable table
//! ([`Registry::to_table`]) — so `EXPERIMENTS.md` numbers regenerate from
//! one code path and same-seed runs snapshot byte-identically.
//!
//! Determinism guarantees:
//!
//! * entries iterate in lexicographic key order (BTreeMap),
//! * label order inside a key is sorted at insertion,
//! * floats format via Rust's shortest-round-trip `{:?}` (no locale, no
//!   platform drift); non-finite values export as JSON `null`.
//!
//! ```
//! use fsoi_sim::metrics::Registry;
//! let mut reg = Registry::new();
//! reg.inc("net.delivered", &[("lane", "meta")], 3);
//! reg.observe("net.latency", &[("lane", "meta")], 17.0);
//! assert_eq!(reg.counter("net.delivered", &[("lane", "meta")]), 3);
//! assert!(reg.to_jsonl().lines().count() == 2);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats::{Histogram, Summary};

/// One metric value.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone event count.
    Counter(u64),
    /// A point-in-time scalar.
    Gauge(f64),
    /// Streaming mean/min/max/σ over observations.
    Summary(Summary),
    /// A fixed-width-bin histogram.
    Histogram(Histogram),
}

impl Metric {
    /// The metric's type name as exported (`counter`, `gauge`, …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Summary(_) => "summary",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Formats a float deterministically for both export paths; non-finite
/// values become JSON `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A registry of named, labelled metrics with deterministic export.
///
/// Keys are canonicalized as `name{label1=v1,label2=v2}` with labels
/// sorted by label name, so the same logical metric always lands in the
/// same entry regardless of call-site label order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: BTreeMap<String, Metric>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> String {
        debug_assert!(
            !name.contains(['{', '}', '"', '\n']),
            "metric name {name:?} contains reserved characters"
        );
        if labels.is_empty() {
            return name.to_string();
        }
        let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
        sorted.sort_by_key(|(k, _)| *k);
        let mut s = String::with_capacity(name.len() + 16);
        s.push_str(name);
        s.push('{');
        for (i, (k, v)) in sorted.iter().enumerate() {
            debug_assert!(
                !k.contains(['{', '}', '=', ',', '"', '\n'])
                    && !v.contains(['{', '}', ',', '"', '\n']),
                "label {k}={v} contains reserved characters"
            );
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s.push('}');
        s
    }

    /// Splits a canonical key back into `(name, [(label, value)])`.
    fn split_key(key: &str) -> (&str, Vec<(&str, &str)>) {
        match key.split_once('{') {
            None => (key, Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').unwrap_or(rest);
                let labels = body
                    .split(',')
                    .filter_map(|pair| pair.split_once('='))
                    .collect();
                (name, labels)
            }
        }
    }

    /// Adds `delta` to the counter (saturating), creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the key already holds a non-counter.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self
            .entries
            .entry(Self::key(name, labels))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c = c.saturating_add(delta),
            other => debug_assert!(false, "{name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets the gauge to `value` (overwriting).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.entries
            .insert(Self::key(name, labels), Metric::Gauge(value));
    }

    /// Records one observation into the summary, creating it when absent.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], x: f64) {
        match self
            .entries
            .entry(Self::key(name, labels))
            .or_insert(Metric::Summary(Summary::new()))
        {
            Metric::Summary(s) => s.record(x),
            other => debug_assert!(false, "{name} is a {}, not a summary", other.type_name()),
        }
    }

    /// Merges a pre-built summary into the entry (parallel Welford).
    pub fn merge_summary(&mut self, name: &str, labels: &[(&str, &str)], other: &Summary) {
        match self
            .entries
            .entry(Self::key(name, labels))
            .or_insert(Metric::Summary(Summary::new()))
        {
            Metric::Summary(s) => s.merge(other),
            wrong => debug_assert!(false, "{name} is a {}, not a summary", wrong.type_name()),
        }
    }

    /// Stores a histogram snapshot under the key (overwriting).
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: Histogram) {
        self.entries
            .insert(Self::key(name, labels), Metric::Histogram(h));
    }

    /// Reads a counter's value (0 when absent or of another type).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.entries.get(&Self::key(name, labels)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Reads a gauge's value (`None` when absent or of another type).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.entries.get(&Self::key(name, labels)) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up any metric by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.entries.get(&Self::key(name, labels))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(canonical_key, metric)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Exports every entry as one JSON line, sorted by key.
    ///
    /// Same-seed runs of a deterministic simulation produce byte-identical
    /// output (the Fig 6 snapshot test in `fsoi-cmp` pins this).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96);
        for (key, metric) in &self.entries {
            let (name, labels) = Self::split_key(key);
            let _ = write!(out, "{{\"metric\":\"{name}\",\"labels\":{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":\"{v}\"");
            }
            let _ = write!(out, "}},\"type\":\"{}\"", metric.type_name());
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{c}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{}", fmt_f64(*v));
                }
                Metric::Summary(s) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"std_dev\":{}",
                        s.count(),
                        fmt_f64(s.mean()),
                        fmt_f64(s.min().unwrap_or(0.0)),
                        fmt_f64(s.max().unwrap_or(0.0)),
                        fmt_f64(s.std_dev()),
                    );
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"bin_width\":{},\"count\":{},\"mean\":{},\"overflow\":{},\"bins\":[",
                        h.bin_width(),
                        h.count(),
                        fmt_f64(h.mean()),
                        h.overflow(),
                    );
                    for (i, (_, c)) in h.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders every entry as an aligned, human-readable table, sorted by
    /// key — the shape `EXPERIMENTS.md` tables regenerate from.
    pub fn to_table(&self) -> String {
        let rows: Vec<(String, &'static str, String)> = self
            .entries
            .iter()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => c.to_string(),
                    Metric::Gauge(v) => fmt_f64(*v),
                    Metric::Summary(s) => format!(
                        "n={} mean={} min={} max={} sd={}",
                        s.count(),
                        fmt_f64(s.mean()),
                        fmt_f64(s.min().unwrap_or(0.0)),
                        fmt_f64(s.max().unwrap_or(0.0)),
                        fmt_f64(s.std_dev()),
                    ),
                    Metric::Histogram(h) => format!(
                        "n={} mean={} p50={} p99={} overflow={}",
                        h.count(),
                        fmt_f64(h.mean()),
                        h.percentile(0.50),
                        h.percentile(0.99),
                        h.overflow(),
                    ),
                };
                (key.clone(), metric.type_name(), value)
            })
            .collect();
        let key_w = rows
            .iter()
            .map(|(k, _, _)| k.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let type_w = 9;
        let mut out = String::new();
        let _ = writeln!(out, "{:<key_w$}  {:<type_w$}  value", "metric", "type");
        let _ = writeln!(
            out,
            "{}  {}  {}",
            "-".repeat(key_w),
            "-".repeat(type_w),
            "-".repeat(5)
        );
        for (k, t, v) in rows {
            let _ = writeln!(out, "{k:<key_w$}  {t:<type_w$}  {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_and_accumulate() {
        let mut r = Registry::new();
        r.inc("a", &[], 2);
        r.inc("a", &[], 3);
        assert_eq!(r.counter("a", &[]), 5);
        r.inc("a", &[], u64::MAX);
        assert_eq!(r.counter("a", &[]), u64::MAX, "counters saturate, not wrap");
        assert_eq!(r.counter("missing", &[]), 0);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = Registry::new();
        r.inc("m", &[("b", "2"), ("a", "1")], 1);
        r.inc("m", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.len(), 1, "label order must not split the entry");
        assert_eq!(r.counter("m", &[("b", "2"), ("a", "1")]), 2);
        let key = r.iter().next().unwrap().0.to_string();
        assert_eq!(key, "m{a=1,b=2}");
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("g", &[("lane", "data")], 0.5);
        r.gauge("g", &[("lane", "data")], 0.25);
        assert_eq!(r.gauge_value("g", &[("lane", "data")]), Some(0.25));
        assert_eq!(r.gauge_value("g", &[]), None);
    }

    #[test]
    fn summaries_observe_and_merge() {
        let mut r = Registry::new();
        r.observe("s", &[], 1.0);
        r.observe("s", &[], 3.0);
        let mut pre = Summary::new();
        pre.record(5.0);
        r.merge_summary("s", &[], &pre);
        match r.get("s", &[]).unwrap() {
            Metric::Summary(s) => {
                assert_eq!(s.count(), 3);
                assert!((s.mean() - 3.0).abs() < 1e-12);
            }
            other => panic!("expected summary, got {}", other.type_name()),
        }
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.inc("z.last", &[], 1);
        r.gauge("a.first", &[("k", "v")], 1.5);
        r.observe("m.mid", &[], 2.0);
        let mut h = Histogram::new(10, 3);
        h.record(15);
        r.histogram("h.hist", &[], h);
        let a = r.to_jsonl();
        let b = r.clone().to_jsonl();
        assert_eq!(a, b, "export must be deterministic");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"metric\":\"a.first\""));
        assert_eq!(
            lines[0],
            "{\"metric\":\"a.first\",\"labels\":{\"k\":\"v\"},\"type\":\"gauge\",\"value\":1.5}"
        );
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"bins\":[0,1,0]"));
        assert!(lines[3].contains("\"metric\":\"z.last\""));
    }

    #[test]
    fn non_finite_gauges_export_as_null() {
        let mut r = Registry::new();
        r.gauge("bad", &[], f64::NAN);
        assert!(r.to_jsonl().contains("\"value\":null"));
        assert!(r.to_table().contains("null"));
    }

    #[test]
    fn table_lists_every_entry() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.inc("net.delivered", &[("lane", "meta")], 7);
        r.observe("net.latency", &[("lane", "meta")], 20.0);
        let t = r.to_table();
        assert!(t.contains("net.delivered{lane=meta}"));
        assert!(t.contains("counter"));
        assert!(t.contains("n=1 mean=20.0"));
        assert_eq!(t.lines().count(), 4, "header + rule + two rows");
    }
}
