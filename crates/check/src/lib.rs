//! `fsoi-check`: a small, dependency-free, deterministic property-testing
//! harness for the FSOI workspace.
//!
//! The workspace must build and test fully offline, so the external
//! `proptest`/`rand` stack is out; this crate replaces the subset the test
//! suites actually use, seeded from the same `fsoi_sim::rng`
//! (Xoshiro256\*\*/SplitMix64) stack the simulator itself runs on:
//!
//! - **Generators** ([`gen`]): plain `Range`s over integers and `f64` are
//!   generators; combinators cover vectors ([`vec_of`]), distinct sorted
//!   sets ([`set_of`]), fixed slates of protocol ops ([`select`]), tuples,
//!   and [`Gen::map`].
//! - **Integrated shrinking** ([`tree`]): generated values carry lazy
//!   shrink trees; the runner walks them greedily to a local minimum.
//! - **Deterministic seeding + regressions** ([`runner`]): per-test seed
//!   streams derived from a fixed base seed, failures recorded as case
//!   seeds in checked-in `.regressions` files and re-run first on later
//!   runs. See the [`runner`] module docs for the exact model and the
//!   `FSOI_CHECK_{SEED,CASES,REPLAY}` environment overrides.
//!
//! A typical port of a proptest property:
//!
//! ```
//! use fsoi_check::{checker, vec_of, Gen};
//!
//! // proptest! { fn sums_fit(v in proptest::collection::vec(0u64..100, 1..10)) { .. } }
//! fn sums_fit() {
//!     checker!().check("sums_fit", vec_of(0u64..100, 1..10), |v| {
//!         assert!(v.iter().sum::<u64>() < 100 * 10);
//!     });
//! }
//! sums_fit();
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod runner;
pub mod tree;

pub use gen::{any_bool, select, set_of, vec_of, Gen};
pub use runner::{Checker, Failure, DEFAULT_CASES, DEFAULT_SEED};
pub use tree::Tree;

/// Builds a [`Checker`] whose `.regressions` file sits next to the calling
/// test source file.
#[macro_export]
macro_rules! checker {
    () => {
        $crate::Checker::with_regressions(env!("CARGO_MANIFEST_DIR"), file!())
    };
}
