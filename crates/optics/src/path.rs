//! Composable optical paths through the free-space layer.
//!
//! A link's light leaves the back-emitting VCSEL, traverses the GaAs
//! substrate, is collimated by a micro-lens, reflects off one or more fixed
//! micro-mirrors, flies across the package cavity, and is focused by the
//! receiver's micro-lens onto the photodetector. [`OpticalPath`] composes
//! these elements and totals their insertion loss together with the
//! diffraction (clipping) loss computed from Gaussian-beam propagation.

use crate::gaussian::GaussianBeam;
use crate::units::{Length, Loss};
use crate::OpticsError;

/// One element of an optical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathElement {
    /// Free-space flight of the given length (contributes to beam spread,
    /// not directly to surface loss).
    FreeSpace(Length),
    /// A micro-mirror reflection with the given power reflectivity.
    Mirror {
        /// Power reflectivity in `(0, 1]`.
        reflectivity: f64,
    },
    /// A refractive surface (e.g. one face of a micro-lens) with the given
    /// power transmission.
    LensSurface {
        /// Power transmission in `(0, 1]`.
        transmission: f64,
    },
    /// Absorption in a substrate (e.g. the 430 µm GaAs wafer, transparent
    /// at 980 nm but not perfectly so), as a fixed dB value.
    SubstrateAbsorption(Loss),
}

/// An end-to-end free-space optical path.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalPath {
    elements: Vec<PathElement>,
    receiver_aperture_radius: Length,
}

impl OpticalPath {
    /// Creates an empty path terminated by a receiving aperture of the
    /// given radius.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::NonPositive`] for a non-positive aperture.
    pub fn new(receiver_aperture_radius: Length) -> Result<Self, OpticsError> {
        if receiver_aperture_radius.as_meters() <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "receiver aperture radius",
                value: receiver_aperture_radius.as_meters(),
            });
        }
        Ok(OpticalPath {
            elements: Vec::new(),
            receiver_aperture_radius,
        })
    }

    /// Appends an element to the path.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::OutOfUnitRange`] if a reflectivity or
    /// transmission lies outside `(0, 1]`.
    pub fn push(&mut self, element: PathElement) -> Result<&mut Self, OpticsError> {
        match element {
            PathElement::Mirror { reflectivity }
                if !(0.0..=1.0).contains(&reflectivity) || reflectivity == 0.0 =>
            {
                return Err(OpticsError::OutOfUnitRange {
                    what: "mirror reflectivity",
                    value: reflectivity,
                })
            }
            PathElement::LensSurface { transmission }
                if !(0.0..=1.0).contains(&transmission) || transmission == 0.0 =>
            {
                return Err(OpticsError::OutOfUnitRange {
                    what: "lens transmission",
                    value: transmission,
                })
            }
            _ => {}
        }
        self.elements.push(element);
        Ok(self)
    }

    /// The paper's worst-case path: a chip-diagonal 2 cm flight guided by
    /// two micro-mirrors, entering free space through the transmitter's
    /// micro-lens and captured by the receiver's (190 µm aperture ⇒ 95 µm
    /// radius). Anti-reflection-coated surfaces transmit 99.5 %; gold
    /// micro-mirrors reflect 98 %; the double GaAs substrate pass absorbs
    /// 0.1 dB total.
    pub fn paper_diagonal() -> Self {
        let mut p = OpticalPath::new(Length::from_micrometers(95.0))
            // lint: allow(P1) the paper's 95 um aperture is a positive constant
            .expect("aperture is positive");
        for element in [
            PathElement::SubstrateAbsorption(Loss::from_db(0.05)),
            PathElement::LensSurface {
                transmission: 0.995,
            },
            PathElement::Mirror { reflectivity: 0.98 },
            PathElement::FreeSpace(Length::from_millimeters(20.0)),
            PathElement::Mirror { reflectivity: 0.98 },
            PathElement::LensSurface {
                transmission: 0.995,
            },
            PathElement::SubstrateAbsorption(Loss::from_db(0.05)),
        ] {
            // lint: allow(P1) every element above is a fixed in-range paper constant
            p.push(element).expect("paper path element is valid");
        }
        p
    }

    /// Total geometric flight length of the path.
    pub fn length(&self) -> Length {
        let total = self
            .elements
            .iter()
            .map(|e| match e {
                PathElement::FreeSpace(l) => l.as_meters(),
                _ => 0.0,
            })
            .sum();
        Length::from_meters(total)
    }

    /// Sum of all fixed (surface and absorption) losses, excluding
    /// diffraction.
    pub fn surface_loss(&self) -> Loss {
        self.elements
            .iter()
            .map(|e| match e {
                PathElement::FreeSpace(_) => Loss::NONE,
                PathElement::Mirror { reflectivity } => Loss::from_transmittance(*reflectivity),
                PathElement::LensSurface { transmission } => {
                    Loss::from_transmittance(*transmission)
                }
                PathElement::SubstrateAbsorption(l) => *l,
            })
            .fold(Loss::NONE, |a, b| a + b)
    }

    /// Diffraction (aperture clipping) loss of `beam` flying the path's
    /// full length into the receiving aperture.
    pub fn clipping_loss(&self, beam: &GaussianBeam) -> Loss {
        let t = beam.capture_fraction(self.length(), self.receiver_aperture_radius);
        Loss::from_transmittance(t.max(f64::MIN_POSITIVE))
    }

    /// Total path loss for `beam`: surface losses plus diffraction loss.
    pub fn total_loss(&self, beam: &GaussianBeam) -> Loss {
        self.surface_loss() + self.clipping_loss(beam)
    }

    /// Speed-of-light propagation delay over the path, in picoseconds.
    /// (The paper notes path-length differences of up to tens of
    /// picoseconds between node pairs, compensated by serializer padding.)
    pub fn propagation_delay_ps(&self) -> f64 {
        self.length().as_meters() / crate::units::SPEED_OF_LIGHT * 1e12
    }

    /// The receiving aperture radius.
    pub fn receiver_aperture_radius(&self) -> Length {
        self.receiver_aperture_radius
    }

    /// The elements of the path, in order.
    pub fn elements(&self) -> &[PathElement] {
        &self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_beam() -> GaussianBeam {
        GaussianBeam::new(
            Length::from_micrometers(45.0),
            Length::from_nanometers(980.0),
        )
        .unwrap()
    }

    #[test]
    fn paper_path_totals_2_6_db() {
        let p = OpticalPath::paper_diagonal();
        let loss = p.total_loss(&paper_beam());
        assert!(
            (loss.db() - 2.6).abs() < 0.2,
            "total loss = {} (paper: 2.6 dB)",
            loss
        );
    }

    #[test]
    fn surface_loss_is_small_part() {
        let p = OpticalPath::paper_diagonal();
        let s = p.surface_loss().db();
        assert!(s > 0.1 && s < 0.5, "surface loss = {s} dB");
        let c = p.clipping_loss(&paper_beam()).db();
        assert!(c > 2.0 && c < 2.6, "clipping loss = {c} dB");
    }

    #[test]
    fn length_and_delay() {
        let p = OpticalPath::paper_diagonal();
        assert!((p.length().as_meters() - 0.02).abs() < 1e-12);
        // 2 cm at c ≈ 66.7 ps.
        assert!((p.propagation_delay_ps() - 66.7).abs() < 0.2);
    }

    #[test]
    fn empty_path_has_no_loss_but_clips_at_waist() {
        let p = OpticalPath::new(Length::from_micrometers(95.0)).unwrap();
        assert_eq!(p.surface_loss().db(), 0.0);
        // At zero distance the beam is 45 µm; a 95 µm aperture passes nearly
        // everything.
        let c = p.clipping_loss(&paper_beam()).db();
        assert!(c < 0.01, "clip = {c}");
        assert_eq!(p.elements().len(), 0);
    }

    #[test]
    fn push_validates_ranges() {
        let mut p = OpticalPath::new(Length::from_micrometers(95.0)).unwrap();
        assert!(p.push(PathElement::Mirror { reflectivity: 1.5 }).is_err());
        assert!(p.push(PathElement::Mirror { reflectivity: 0.0 }).is_err());
        assert!(p
            .push(PathElement::LensSurface { transmission: -0.1 })
            .is_err());
        assert!(p.push(PathElement::Mirror { reflectivity: 0.9 }).is_ok());
    }

    #[test]
    fn rejects_nonpositive_aperture() {
        assert!(OpticalPath::new(Length::from_meters(0.0)).is_err());
    }

    #[test]
    fn longer_paths_lose_more() {
        let beam = paper_beam();
        let mut short = OpticalPath::new(Length::from_micrometers(95.0)).unwrap();
        short
            .push(PathElement::FreeSpace(Length::from_millimeters(5.0)))
            .unwrap();
        let mut long = OpticalPath::new(Length::from_micrometers(95.0)).unwrap();
        long.push(PathElement::FreeSpace(Length::from_millimeters(20.0)))
            .unwrap();
        assert!(long.total_loss(&beam).db() > short.total_loss(&beam).db());
    }
}
