//! The tuned exponential back-off of §4.3.2.
//!
//! After a collision, each involved sender retransmits in a random slot
//! within a window of `W` slots; the window for the `r`-th retry grows as
//! `W_r = W · B^(r−1)`. Classic Ethernet doubles (`B = 2`), but the paper
//! argues that is an over-correction for this network and derives the
//! optimum `W = 2.7, B = 1.1` from an analytical model (Figure 4) —
//! producing markedly lower common-case resolution delay while still
//! escaping the pathological all-to-one burst.

use fsoi_sim::rng::Xoshiro256StarStar;

/// One retransmission decision: the window it was drawn from and the slot
/// delay that came out. The network engine emits this as a `backoff` trace
/// event so a flight-recorder dump shows *why* a packet waited, not just
/// that it did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffDraw {
    /// The 1-indexed retry this delay was drawn for.
    pub retry: u32,
    /// The (real-valued) window `W_r` the draw was uniform over.
    pub window: f64,
    /// The drawn delay in whole slots, `>= 1`.
    pub delay_slots: u64,
}

/// An exponential back-off policy with (possibly non-integer) starting
/// window `W` and growth base `B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    initial_window: f64,
    base: f64,
}

impl BackoffPolicy {
    /// The paper's optimum: `W = 2.7, B = 1.1`.
    pub const PAPER_OPTIMUM: BackoffPolicy = BackoffPolicy {
        initial_window: 2.7,
        base: 1.1,
    };

    /// Classic binary exponential back-off (`W = 2.7, B = 2`) used as the
    /// paper's comparison point.
    pub const BINARY: BackoffPolicy = BackoffPolicy {
        initial_window: 2.7,
        base: 2.0,
    };

    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics unless `initial_window >= 1` and `base >= 1`.
    pub fn new(initial_window: f64, base: f64) -> Self {
        assert!(initial_window >= 1.0, "window must be at least one slot");
        assert!(base >= 1.0, "base must be at least 1 (non-shrinking)");
        BackoffPolicy {
            initial_window,
            base,
        }
    }

    /// A fixed-window policy (`B = 1`), the pathological case §4.3.2 warns
    /// about.
    pub fn fixed(window: f64) -> Self {
        BackoffPolicy::new(window, 1.0)
    }

    /// The starting window `W`.
    pub fn initial_window(&self) -> f64 {
        self.initial_window
    }

    /// The growth base `B`.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The (real-valued) window for the `r`-th retry, `r >= 1`:
    /// `W_r = W · B^(r−1)`, capped at 2¹⁶ slots to bound memory and delay.
    ///
    /// # Panics
    ///
    /// Panics if `retry == 0` (retries are 1-indexed).
    pub fn window_for_retry(&self, retry: u32) -> f64 {
        assert!(retry >= 1, "retries are 1-indexed");
        (self.initial_window * self.base.powi(retry as i32 - 1)).min(65_536.0)
    }

    /// Draws the slot delay (in whole slots, `>= 1`) for the `r`-th retry:
    /// uniform over the continuous window, rounded up so a draw of `u`
    /// slots means "transmit in the ⌈u⌉-th slot after detection". The
    /// non-integer window is honoured exactly in distribution: e.g. with
    /// `W_r = 2.7`, slots 1 and 2 are drawn with probability 1/2.7 each and
    /// slot 3 with probability 0.7/2.7.
    pub fn draw_delay_slots(&self, retry: u32, rng: &mut Xoshiro256StarStar) -> u64 {
        self.draw(retry, rng).delay_slots
    }

    /// Like [`draw_delay_slots`](Self::draw_delay_slots), but returns the
    /// whole [`BackoffDraw`] decision — window included — for tracing.
    pub fn draw(&self, retry: u32, rng: &mut Xoshiro256StarStar) -> BackoffDraw {
        let window = self.window_for_retry(retry);
        let u = rng.next_f64() * window;
        BackoffDraw {
            retry,
            window,
            delay_slots: (u.floor() as u64) + 1,
        }
    }

    /// The mean of [`draw_delay_slots`](Self::draw_delay_slots) in slots,
    /// `(W_r + 1) / 2` for integer windows and the exact piecewise value in
    /// general — used by the analytical model of Figure 4.
    pub fn mean_delay_slots(&self, retry: u32) -> f64 {
        let w = self.window_for_retry(retry);
        // E[floor(U·w) + 1] for U uniform on [0,1):
        // sum over k of P(delay = k+1)·(k+1).
        let full = w.floor() as u64;
        let frac = w - full as f64;
        let mut e = 0.0;
        for k in 0..full {
            e += (k as f64 + 1.0) / w;
        }
        if frac > 0.0 {
            e += (full as f64 + 1.0) * frac / w;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_growth() {
        let p = BackoffPolicy::PAPER_OPTIMUM;
        assert!((p.window_for_retry(1) - 2.7).abs() < 1e-12);
        assert!((p.window_for_retry(2) - 2.97).abs() < 1e-12);
        assert!((p.window_for_retry(11) - 2.7 * 1.1f64.powi(10)).abs() < 1e-9);
        let b = BackoffPolicy::BINARY;
        assert!((b.window_for_retry(3) - 10.8).abs() < 1e-12);
    }

    #[test]
    fn window_is_capped() {
        let p = BackoffPolicy::BINARY;
        assert_eq!(p.window_for_retry(100), 65_536.0);
    }

    #[test]
    fn fixed_policy_never_grows() {
        let p = BackoffPolicy::fixed(3.0);
        assert_eq!(p.window_for_retry(1), 3.0);
        assert_eq!(p.window_for_retry(50), 3.0);
        assert_eq!(p.base(), 1.0);
    }

    #[test]
    fn draws_stay_in_window() {
        let p = BackoffPolicy::PAPER_OPTIMUM;
        let mut rng = Xoshiro256StarStar::new(1);
        for retry in 1..=5 {
            let w = p.window_for_retry(retry);
            for _ in 0..1000 {
                let d = p.draw_delay_slots(retry, &mut rng);
                assert!(d >= 1);
                assert!((d as f64) <= w.ceil(), "draw {d} beyond window {w}");
            }
        }
    }

    #[test]
    fn draw_distribution_matches_noninteger_window() {
        // W = 2.7: P(1) = P(2) = 1/2.7 ≈ 0.370, P(3) = 0.7/2.7 ≈ 0.259.
        let p = BackoffPolicy::PAPER_OPTIMUM;
        let mut rng = Xoshiro256StarStar::new(7);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            let d = p.draw_delay_slots(1, &mut rng) as usize;
            counts[d.min(3)] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        let f3 = counts[3] as f64 / n as f64;
        assert!((f1 - 1.0 / 2.7).abs() < 0.01, "P(1) = {f1}");
        assert!((f2 - 1.0 / 2.7).abs() < 0.01, "P(2) = {f2}");
        assert!((f3 - 0.7 / 2.7).abs() < 0.01, "P(3) = {f3}");
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn mean_delay_closed_form() {
        // Integer window w: mean = (w+1)/2.
        let p = BackoffPolicy::fixed(4.0);
        assert!((p.mean_delay_slots(1) - 2.5).abs() < 1e-12);
        // W = 2.7: 1·(1/2.7) + 2·(1/2.7) + 3·(0.7/2.7) = (1+2+2.1)/2.7.
        let q = BackoffPolicy::PAPER_OPTIMUM;
        let expect = (1.0 + 2.0 + 2.1) / 2.7;
        assert!((q.mean_delay_slots(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let p = BackoffPolicy::PAPER_OPTIMUM;
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| p.draw_delay_slots(2, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - p.mean_delay_slots(2)).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "window must be at least one slot")]
    fn tiny_window_panics() {
        BackoffPolicy::new(0.5, 1.1);
    }

    #[test]
    #[should_panic(expected = "retries are 1-indexed")]
    fn zero_retry_panics() {
        BackoffPolicy::PAPER_OPTIMUM.window_for_retry(0);
    }

    #[test]
    fn accessors() {
        let p = BackoffPolicy::new(3.5, 1.3);
        assert_eq!(p.initial_window(), 3.5);
        assert_eq!(p.base(), 1.3);
    }

    #[test]
    fn draw_decision_carries_its_window() {
        let p = BackoffPolicy::PAPER_OPTIMUM;
        let mut rng = Xoshiro256StarStar::new(5);
        for retry in 1..=6 {
            let d = p.draw(retry, &mut rng);
            assert_eq!(d.retry, retry);
            assert_eq!(d.window, p.window_for_retry(retry));
            assert!(d.delay_slots >= 1 && d.delay_slots as f64 <= d.window.ceil());
        }
        // The two draw paths share one RNG stream/shape.
        let mut a = Xoshiro256StarStar::new(9);
        let mut b = Xoshiro256StarStar::new(9);
        for retry in 1..=8 {
            assert_eq!(
                p.draw_delay_slots(retry, &mut a),
                p.draw(retry, &mut b).delay_slots
            );
        }
    }
}
