//! Figures 6/7 (and 8, Table 4) bench: full-system simulation throughput
//! — a 16-node CMP run over each interconnect class. These are the
//! workhorses behind every evaluation figure; the bench tracks how fast
//! the reproduction itself runs.

use fsoi_bench::microbench::{BenchmarkId, Criterion};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_cmp::configs::{NetworkKind, SystemConfig};
use fsoi_cmp::system::CmpSystem;
use fsoi_cmp::workload::AppProfile;

fn run_once(kind: NetworkKind, ops: u64) -> u64 {
    let mut app = AppProfile::by_name("ba").expect("known app");
    app.ops_per_core = ops;
    CmpSystem::new(SystemConfig::paper_16(kind), app)
        .run(50_000_000)
        .cycles
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_system_16node");
    g.sample_size(10);
    for name in ["fsoi", "mesh", "L0"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            let kind = match *name {
                "fsoi" => NetworkKind::fsoi(16),
                "mesh" => NetworkKind::mesh(16),
                _ => NetworkKind::L0,
            };
            b.iter(|| run_once(kind.clone(), 300));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig7_system_64node");
    g.sample_size(10);
    g.bench_function("fsoi", |b| {
        b.iter(|| {
            let mut app = AppProfile::by_name("ws").expect("known app");
            app.ops_per_core = 100;
            CmpSystem::new(SystemConfig::paper_64(NetworkKind::fsoi(64)), app)
                .run(50_000_000)
                .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
