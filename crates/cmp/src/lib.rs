//! Chip-multiprocessor system simulator for the FSOI reproduction.
//!
//! Ties together the workspace: parameterized cores running synthetic
//! application workloads ([`workload`]), the Table 2 MESI directory
//! protocol (`fsoi-coherence`), one of five interconnects ([`configs`] —
//! FSOI, mesh, L0, Lr1, Lr2), bandwidth-limited memory channels
//! ([`memory`]), and Wattch-style chip energy accounting ([`energy`]).
//!
//! The entry point is [`system::CmpSystem`]:
//!
//! ```
//! use fsoi_cmp::configs::{NetworkKind, SystemConfig};
//! use fsoi_cmp::system::CmpSystem;
//! use fsoi_cmp::workload::AppProfile;
//!
//! let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16));
//! let mut app = AppProfile::by_name("tsp").unwrap();
//! app.ops_per_core = 100; // keep the doctest fast
//! let report = CmpSystem::new(cfg, app).run(1_000_000);
//! assert!(report.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cache;
pub mod configs;
pub mod core;
pub mod energy;
pub mod interconnect;
pub mod memory;
pub mod metrics;
pub mod system;
pub mod workload;

pub use configs::{NetworkKind, SystemConfig};
pub use metrics::RunReport;
pub use system::CmpSystem;
pub use workload::AppProfile;
