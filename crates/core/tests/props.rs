//! Property tests for the FSOI network's data structures and analysis
//! (on the in-repo `fsoi-check` harness).

use fsoi_check::{checker, set_of, vec_of};
use fsoi_net::analysis::collision::node_collision_probability;
use fsoi_net::backoff::BackoffPolicy;
use fsoi_net::lane::Lanes;
use fsoi_net::packet::{HeaderCode, Packet, PacketClass};
use fsoi_net::spacing::ReplySlotReservations;
use fsoi_net::topology::{receiver_index, senders_for_receiver, NodeId};
use fsoi_net::{FsoiConfig, FsoiNetwork};
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::Cycle;

/// Any set of two or more distinct senders produces a detectably
/// collided header, and the decoded superset always contains every
/// actual participant.
#[test]
fn header_code_detects_and_bounds_collisions() {
    checker!().check(
        "header_code_detects_and_bounds_collisions",
        set_of(0..64, 2..8),
        |senders| {
            let nodes = 64;
            let list: Vec<NodeId> = senders.iter().map(|&s| NodeId(s)).collect();
            let h = HeaderCode::superpose_all(&list, nodes);
            assert!(h.is_collided(), "distinct senders must be detected");
            assert_eq!(h.decode(), None);
            let superset = h.possible_senders(nodes);
            for s in &list {
                assert!(superset.contains(s), "superset must contain {s}");
            }
            // Bonus sanity: a single sender decodes cleanly.
            let lone = NodeId(senders[0]);
            let clean = HeaderCode::encode(lone, nodes);
            assert_eq!(clean.decode(), Some(lone));
        },
    );
}

/// Receiver assignment partitions the senders: every sender of a
/// destination appears in exactly one receiver group.
#[test]
fn receiver_groups_partition_senders() {
    checker!().check(
        "receiver_groups_partition_senders",
        (2usize..65, 1usize..5),
        |&(nodes, receivers)| {
            for dst in 0..nodes {
                let mut seen = vec![0u32; nodes];
                for rx in 0..receivers {
                    for s in senders_for_receiver(NodeId(dst), rx, nodes, receivers) {
                        seen[s.0] += 1;
                        assert_eq!(receiver_index(s, NodeId(dst), nodes, receivers), rx);
                    }
                }
                for (i, &c) in seen.iter().enumerate() {
                    assert_eq!(c, u32::from(i != dst), "node {} vs dst {}", i, dst);
                }
            }
        },
    );
}

/// Back-off draws always fall inside the (ceiling of the) window and
/// windows never shrink with the retry count.
#[test]
fn backoff_windows_grow_and_bound_draws() {
    checker!().check(
        "backoff_windows_grow_and_bound_draws",
        (1.0f64..10.0, 1.0f64..2.5, 0u64..u64::MAX),
        |&(w, b, seed)| {
            let p = BackoffPolicy::new(w, b);
            let mut rng = Xoshiro256StarStar::new(seed);
            let mut prev = 0.0;
            for retry in 1..12u32 {
                let win = p.window_for_retry(retry);
                assert!(win >= prev);
                prev = win;
                for _ in 0..50 {
                    let d = p.draw_delay_slots(retry, &mut rng);
                    assert!(d >= 1 && d as f64 <= win.ceil());
                }
                // The analytic mean matches the support.
                let m = p.mean_delay_slots(retry);
                assert!(m >= 1.0 && m <= win.ceil());
            }
        },
    );
}

/// Scaling lane bandwidth down never shortens serialization, and the
/// scaled lanes still carry whole packets.
#[test]
fn lane_scaling_is_monotone() {
    checker!().check("lane_scaling_is_monotone", 0.05f64..1.0, |&frac| {
        let base = Lanes::fig11_base();
        let scaled = base.scaled_bandwidth(frac);
        for class in [PacketClass::Meta, PacketClass::Data] {
            assert!(scaled.serialization_cycles(class) >= base.serialization_cycles(class));
            assert!(scaled.spec(class).vcsels >= 1);
        }
    });
}

/// Reservations never double-book a slot and delays are multiples of
/// the slot length.
#[test]
fn reservations_never_collide() {
    checker!().check(
        "reservations_never_collide",
        (vec_of(0u64..400, 1..60), 1u64..10),
        |(arrivals, slot)| {
            let slot = *slot;
            let mut book = ReplySlotReservations::new();
            let mut taken = std::collections::BTreeSet::new();
            for &a in arrivals {
                let r = book.reserve(Cycle(a), slot);
                assert!(r.slot_start.as_u64().is_multiple_of(slot));
                assert!(r.request_delay.is_multiple_of(slot));
                assert!(r.slot_start.as_u64() + slot > a, "grant not in the past");
                assert!(
                    taken.insert(r.slot_start),
                    "double booking at {:?}",
                    r.slot_start
                );
            }
        },
    );
}

/// Every delivered packet's trace lifecycle is complete: exactly one
/// `inject` and one `deliver`, every collision / bit error is paired with
/// a retransmission (`tx_start` count = 1 + failures), and the retry
/// count reported at delivery equals the number of traced failures.
#[test]
fn delivered_packets_have_complete_trace_lifecycles() {
    use fsoi_sim::trace::{self, TraceEvent};
    use std::collections::BTreeMap;
    if !trace::compiled() {
        return; // release build without the `trace` feature: nothing recorded
    }

    #[derive(Default)]
    struct Life {
        injects: u32,
        delivers: u32,
        tx_starts: u32,
        failures: u32, // collisions + bit errors
        backoffs: u32,
    }

    checker!().check(
        "delivered_packets_have_complete_trace_lifecycles",
        (
            2usize..17,
            0u64..u64::MAX,
            vec_of((0u64..64, 0u64..64, 0u64..2), 1..24),
        ),
        |&(nodes, seed, ref traffic)| {
            let (records, delivered) = trace::capture(|| {
                let mut net = FsoiNetwork::new(FsoiConfig::nodes(nodes), seed);
                for &(s, d, class_bit) in traffic {
                    let src = (s as usize) % nodes;
                    let dst = if d as usize % nodes == src {
                        (src + 1) % nodes
                    } else {
                        d as usize % nodes
                    };
                    let class = if class_bit == 0 {
                        PacketClass::Meta
                    } else {
                        PacketClass::Data
                    };
                    let _ = net.inject(Packet::new(NodeId(src), NodeId(dst), class, s));
                }
                for _ in 0..64 {
                    if net.is_idle() {
                        break;
                    }
                    net.run(1_000);
                }
                assert!(net.is_idle(), "injected traffic must drain");
                net.drain_delivered()
            });

            let mut lives: BTreeMap<u64, Life> = BTreeMap::new();
            for r in &records {
                match &r.event {
                    TraceEvent::Inject { packet, .. } => {
                        lives.entry(*packet).or_default().injects += 1
                    }
                    TraceEvent::Deliver { packet, .. } => {
                        lives.entry(*packet).or_default().delivers += 1
                    }
                    TraceEvent::TxStart { packet, .. } => {
                        lives.entry(*packet).or_default().tx_starts += 1
                    }
                    TraceEvent::Collide { packet, .. } | TraceEvent::BitError { packet, .. } => {
                        lives.entry(*packet).or_default().failures += 1
                    }
                    TraceEvent::Backoff { packet, .. } => {
                        lives.entry(*packet).or_default().backoffs += 1
                    }
                    _ => {}
                }
            }

            // Nothing is ever dropped: with the network drained, every
            // accepted injection must have been delivered.
            let total_injects: u32 = lives.values().map(|l| l.injects).sum();
            assert_eq!(
                delivered.len() as u32,
                total_injects,
                "drained network delivers everything"
            );

            for d in &delivered {
                let id = d.packet.id;
                let l = lives
                    .get(&id)
                    .unwrap_or_else(|| panic!("packet {id} left no trace"));
                assert_eq!(l.injects, 1, "packet {id}: exactly one inject");
                assert_eq!(l.delivers, 1, "packet {id}: exactly one deliver");
                assert_eq!(
                    l.tx_starts,
                    1 + l.failures,
                    "packet {id}: every collision/bit error pairs with a retransmission"
                );
                assert_eq!(
                    d.packet.retries, l.failures,
                    "packet {id}: delivered retry count matches traced failures"
                );
                // Hint winners retransmit without backing off, so backoffs
                // can undershoot failures but never exceed them.
                assert!(
                    l.backoffs <= l.failures,
                    "packet {id}: at most one backoff per failure"
                );
            }
        },
    );
}

/// Fast-forwarding (`run`, which jumps the clock to the next scheduled
/// event) is indistinguishable from ticking every cycle: same delivered
/// packets in the same order with the same retry counts and latencies,
/// byte-identical stats export, same final clock.
#[test]
fn fast_forward_equals_cycle_by_cycle() {
    use fsoi_sim::metrics::Registry;
    checker!().check(
        "fast_forward_equals_cycle_by_cycle",
        (
            2usize..17,
            0u64..u64::MAX,
            vec_of((0u64..64, 0u64..64, 0u64..2), 1..24),
        ),
        |&(nodes, seed, ref traffic)| {
            let drive = |fast: bool| {
                let mut net = FsoiNetwork::new(FsoiConfig::nodes(nodes), seed);
                for &(s, d, class_bit) in traffic {
                    let src = (s as usize) % nodes;
                    let dst = if d as usize % nodes == src {
                        (src + 1) % nodes
                    } else {
                        d as usize % nodes
                    };
                    let class = if class_bit == 0 {
                        PacketClass::Meta
                    } else {
                        PacketClass::Data
                    };
                    let _ = net.inject(Packet::new(NodeId(src), NodeId(dst), class, s));
                }
                if fast {
                    net.run(20_000);
                } else {
                    for _ in 0..20_000 {
                        net.tick();
                    }
                }
                assert!(net.is_idle(), "injected traffic must drain");
                let delivered: Vec<_> = net
                    .drain_delivered()
                    .iter()
                    .map(|d| {
                        (
                            d.packet.id,
                            d.packet.src,
                            d.packet.dst,
                            d.packet.retries,
                            d.delivered_at,
                        )
                    })
                    .collect();
                let mut reg = Registry::new();
                net.stats().export(&mut reg);
                (delivered, reg.to_jsonl(), net.now())
            };
            assert_eq!(drive(true), drive(false), "fast-forward must be exact");
        },
    );
}

/// The Figure 3 closed form is a probability, monotone in p, and
/// decreasing in the receiver count.
///
/// The `.regressions`-era proptest failure (shrunk to `p = 0.2334...,
/// nodes = 3`) is additionally pinned as the named unit test
/// `fig3_shrink_regression_nodes3` in `src/analysis/collision.rs`.
#[test]
fn collision_probability_sane() {
    checker!().check(
        "collision_probability_sane",
        (0.0f64..1.0, 3usize..128),
        |&(p, nodes)| {
            let mut prev = f64::INFINITY;
            for r in 1..=4usize {
                let c = node_collision_probability(p, nodes, r);
                assert!((0.0..=1.0).contains(&c));
                assert!(c <= prev + 1e-12);
                prev = c;
            }
            if p > 0.01 {
                let lo = node_collision_probability(p * 0.5, nodes, 2);
                let hi = node_collision_probability(p, nodes, 2);
                assert!(hi >= lo - 1e-12);
            }
        },
    );
}
