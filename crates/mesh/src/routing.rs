//! Dimension-ordered (XY) routing.
//!
//! XY routing first corrects the X coordinate, then the Y coordinate. It
//! is minimal and — because it never turns from Y back to X — acyclic in
//! the channel-dependency graph, hence deadlock-free on a mesh without
//! extra virtual-channel restrictions.

/// The five router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward smaller X.
    West,
    /// Toward larger X.
    East,
    /// Toward smaller Y.
    North,
    /// Toward larger Y.
    South,
    /// The local processing element.
    Local,
}

impl Port {
    /// All ports, indexable by [`Port::index`].
    pub const ALL: [Port; 5] = [
        Port::West,
        Port::East,
        Port::North,
        Port::South,
        Port::Local,
    ];

    /// Dense index 0..5.
    pub fn index(self) -> usize {
        match self {
            Port::West => 0,
            Port::East => 1,
            Port::North => 2,
            Port::South => 3,
            Port::Local => 4,
        }
    }

    /// The port a neighbouring router receives on when this router sends
    /// out of `self` (East↔West, North↔South).
    pub fn opposite(self) -> Port {
        match self {
            Port::West => Port::East,
            Port::East => Port::West,
            Port::North => Port::South,
            Port::South => Port::North,
            Port::Local => Port::Local,
        }
    }
}

/// Node index → (x, y) on a `width`-wide mesh.
pub fn coords(node: usize, width: usize) -> (usize, usize) {
    (node % width, node / width)
}

/// (x, y) → node index.
pub fn node_at(x: usize, y: usize, width: usize) -> usize {
    y * width + x
}

/// The XY-routing output port at router `here` for a packet destined to
/// `dst`.
pub fn xy_route(here: usize, dst: usize, width: usize) -> Port {
    let (hx, hy) = coords(here, width);
    let (dx, dy) = coords(dst, width);
    if dx > hx {
        Port::East
    } else if dx < hx {
        Port::West
    } else if dy > hy {
        Port::South
    } else if dy < hy {
        Port::North
    } else {
        Port::Local
    }
}

/// Number of hops between two nodes under minimal routing (the number of
/// routers traversed minus one).
pub fn hop_distance(a: usize, b: usize, width: usize) -> usize {
    let (ax, ay) = coords(a, width);
    let (bx, by) = coords(b, width);
    ax.abs_diff(bx) + ay.abs_diff(by)
}

/// Mean hop distance over all ordered pairs of distinct nodes of a
/// `width × height` mesh.
pub fn mean_hop_distance(width: usize, height: usize) -> f64 {
    let n = width * height;
    let mut total = 0usize;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                total += hop_distance(a, b, width);
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        for node in 0..16 {
            let (x, y) = coords(node, 4);
            assert_eq!(node_at(x, y, 4), node);
        }
    }

    #[test]
    fn port_indices_dense_and_opposites() {
        for (i, p) in Port::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.opposite().opposite(), *p);
        }
    }

    #[test]
    fn xy_corrects_x_first() {
        // From (0,0) to (3,3) on a 4-wide mesh: go East first.
        assert_eq!(xy_route(0, 15, 4), Port::East);
        // From (3,0) to (3,3): X aligned, go South.
        assert_eq!(xy_route(3, 15, 4), Port::South);
        // At destination: eject.
        assert_eq!(xy_route(15, 15, 4), Port::Local);
        // Westward and northward.
        assert_eq!(xy_route(3, 0, 4), Port::West);
        assert_eq!(xy_route(12, 0, 4), Port::North);
    }

    #[test]
    fn route_always_reduces_distance() {
        let width = 4;
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                let mut here = src;
                let mut hops = 0;
                loop {
                    let p = xy_route(here, dst, width);
                    if p == Port::Local {
                        break;
                    }
                    let (x, y) = coords(here, width);
                    here = match p {
                        Port::East => node_at(x + 1, y, width),
                        Port::West => node_at(x - 1, y, width),
                        Port::South => node_at(x, y + 1, width),
                        Port::North => node_at(x, y - 1, width),
                        Port::Local => unreachable!(),
                    };
                    hops += 1;
                    assert!(hops <= 6, "route must terminate");
                }
                assert_eq!(here, dst);
                assert_eq!(hops, hop_distance(src, dst, width));
            }
        }
    }

    #[test]
    fn mean_hops_4x4() {
        // Mean Manhattan distance on a 4×4 mesh is 8/3 ≈ 2.67.
        let m = mean_hop_distance(4, 4);
        assert!((m - 8.0 / 3.0).abs() < 1e-9, "mean = {m}");
    }

    #[test]
    fn mean_hops_8x8() {
        // Over distinct ordered pairs: 2·(k²−1)/(3k) · k²/(k²−1) = 2k/3,
        // so an 8×8 mesh averages 16/3 ≈ 5.33 hops.
        let m = mean_hop_distance(8, 8);
        assert!((m - 16.0 / 3.0).abs() < 1e-9, "mean = {m}");
    }
}
