//! Collision-probability analysis (Figure 3 and footnote 4).
//!
//! Under the simplified model — every node transmits with probability `p`
//! per slot to a uniformly random destination, and the `N − 1` senders of
//! each destination are divided among its `R` receivers by the static
//! round-robin map in [`crate::topology::receiver_index`] — the
//! probability that *some* receiver of a given node sees a collision in a
//! slot is
//!
//! ```text
//! P = 1 − Π_rx [ (1 − q)^n_rx  +  n_rx · q · (1 − q)^(n_rx − 1) ]
//! ```
//!
//! with `q = p/(N−1)` and `n_rx` the *integer* number of senders wired to
//! receiver `rx` (the group sizes of `0..N−1` mod `R`): each receiver is
//! collision-free when zero or one of its senders targets it, and a
//! receiver with a single sender can never collide. When `R` divides
//! `N − 1` every `n_rx` equals `(N−1)/R` and the product collapses to the
//! paper's symmetric `[...]^R` form; for the general case the per-group
//! product is the exact probability, whereas interpolating a fractional
//! `n = (N−1)/R` into the symmetric form under-counts small-`N`
//! configurations (the recorded `nodes = 3, R = 2` regression). Figure 3
//! plots this normalized to `p` for `R = 1..4`, showing collision
//! frequency inversely proportional to the receiver count — the basis for
//! the paper's choice of 2 receivers per lane.

use fsoi_sim::rng::Xoshiro256StarStar;

/// The Figure 3 closed form: probability a given node experiences a
/// collision in a slot.
///
/// # Panics
///
/// Panics unless `nodes >= 2`, `receivers >= 1` and `p ∈ [0, 1]`.
pub fn node_collision_probability(p: f64, nodes: usize, receivers: usize) -> f64 {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(receivers >= 1, "need at least one receiver");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let senders = nodes - 1;
    let q = p / senders as f64; // P(a specific sender targets this node)
                                // Exact per-receiver group sizes: sender rank r ∈ 0..N−1 is wired to
                                // receiver r % R, so group rx holds ceil/floor((N−1)/R) senders.
    let mut no_collision = 1.0;
    for rx in 0..receivers {
        let n_rx = senders / receivers + usize::from(rx < senders % receivers);
        if n_rx <= 1 {
            // Zero or one senders on this receiver: it can never collide.
            continue;
        }
        let n = n_rx as f64;
        let none = (1.0 - q).powi(n_rx as i32);
        let one = n * q * (1.0 - q).powi(n_rx as i32 - 1);
        no_collision *= none + one;
    }
    1.0 - no_collision
}

/// Figure 3's y-axis: the node collision probability normalized to the
/// transmission probability.
pub fn normalized_collision_probability(p: f64, nodes: usize, receivers: usize) -> f64 {
    if p == 0.0 {
        0.0
    } else {
        node_collision_probability(p, nodes, receivers) / p
    }
}

/// Footnote 4's per-packet view for the 2-receiver design: the probability
/// that a *transmitted* packet collides. A packet collides when at least
/// one of the other senders sharing its receiver (≈ `(N−1)/2 − 1` nodes)
/// transmits to the same destination in the same slot:
///
/// ```text
/// P ≈ 1 − (1 − p/(N−1))^((N−1)/2 − 1) ≈ p/2 − p²/8 + …
/// ```
pub fn per_packet_collision_probability(p: f64, nodes: usize) -> f64 {
    assert!(nodes >= 3, "need at least three nodes for sharing");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let sharers = (nodes - 1) as f64 / 2.0 - 1.0;
    let q = p / (nodes - 1) as f64;
    1.0 - (1.0 - q).powf(sharers)
}

/// Result of a Monte-Carlo collision experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Fraction of slots in which the observed node had a collision.
    pub node_collision_rate: f64,
    /// Fraction of transmitted packets that collided.
    pub packet_collision_rate: f64,
    /// Measured per-node transmission probability (sanity check ≈ `p`).
    pub measured_p: f64,
}

/// Monte-Carlo validation of the closed form: simulates `slots` slots of
/// the idealized model (every node transmits w.p. `p` to a uniform
/// destination; senders share receivers round-robin) and measures both the
/// per-node and per-packet collision rates.
pub fn monte_carlo(
    p: f64,
    nodes: usize,
    receivers: usize,
    slots: u64,
    seed: u64,
) -> MonteCarloResult {
    assert!(nodes >= 2 && receivers >= 1);
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut node_collisions = 0u64;
    let mut packet_collisions = 0u64;
    let mut transmissions = 0u64;
    // occupancy[dst][rx] = number of packets in this slot.
    let mut occupancy = vec![vec![0u32; receivers]; nodes];
    for _ in 0..slots {
        for row in &mut occupancy {
            row.fill(0);
        }
        let mut sent: Vec<(usize, usize)> = Vec::new(); // (dst, rx)
        for src in 0..nodes {
            if !rng.bernoulli(p) {
                continue;
            }
            transmissions += 1;
            let mut dst = rng.next_below(nodes as u64 - 1) as usize;
            if dst >= src {
                dst += 1;
            }
            let rx = crate::topology::receiver_index(
                crate::topology::NodeId(src),
                crate::topology::NodeId(dst),
                nodes,
                receivers,
            );
            occupancy[dst][rx] += 1;
            sent.push((dst, rx));
        }
        // Node 0's view for the node-collision rate (all nodes are
        // symmetric; using one avoids double counting).
        if occupancy[0].iter().any(|&c| c >= 2) {
            node_collisions += 1;
        }
        packet_collisions += sent
            .iter()
            .filter(|&&(dst, rx)| occupancy[dst][rx] >= 2)
            .count() as u64;
    }
    MonteCarloResult {
        node_collision_rate: node_collisions as f64 / slots as f64,
        packet_collision_rate: if transmissions == 0 {
            0.0
        } else {
            packet_collisions as f64 / transmissions as f64
        },
        measured_p: transmissions as f64 / (slots as f64 * nodes as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_p_means_zero_collisions() {
        assert_eq!(node_collision_probability(0.0, 16, 2), 0.0);
        assert_eq!(normalized_collision_probability(0.0, 16, 2), 0.0);
        assert_eq!(per_packet_collision_probability(0.0, 16), 0.0);
    }

    #[test]
    fn more_receivers_fewer_collisions() {
        let p = 0.10;
        let mut prev = f64::INFINITY;
        for r in 1..=4 {
            let c = node_collision_probability(p, 16, r);
            assert!(c < prev, "R={r}: {c} !< {prev}");
            prev = c;
        }
    }

    #[test]
    fn collision_frequency_roughly_inverse_in_receivers() {
        // Paper: "to a first-order approximation, collision frequency is
        // inversely proportional to the number of receivers."
        let p = 0.05;
        let c1 = node_collision_probability(p, 16, 1);
        let c2 = node_collision_probability(p, 16, 2);
        let c4 = node_collision_probability(p, 16, 4);
        assert!((c1 / c2 - 2.0).abs() < 0.35, "c1/c2 = {}", c1 / c2);
        assert!((c2 / c4 - 2.0).abs() < 0.35, "c2/c4 = {}", c2 / c4);
    }

    #[test]
    fn weak_dependence_on_node_count() {
        // Paper: "the result has an extremely weak dependency on the number
        // of nodes in a system (N) as long as it is not too small."
        let p = 0.10;
        let a = normalized_collision_probability(p, 16, 2);
        let b = normalized_collision_probability(p, 64, 2);
        let c = normalized_collision_probability(p, 256, 2);
        assert!((a - b).abs() / a < 0.12, "{a} vs {b}");
        assert!((b - c).abs() / b < 0.05, "{b} vs {c}");
    }

    #[test]
    fn normalized_curve_increases_with_p() {
        let mut prev = 0.0;
        for &p in &[0.01, 0.05, 0.10, 0.20, 0.33] {
            let c = normalized_collision_probability(p, 16, 2);
            assert!(c > prev);
            prev = c;
        }
        // At p = 33 %, R = 1 the normalized probability reaches tens of
        // percent (the top of Figure 3's y-axis).
        let top = normalized_collision_probability(0.33, 16, 1);
        assert!(top > 0.10 && top < 0.35, "top = {top}");
    }

    #[test]
    fn footnote4_series_expansion() {
        // For small p, per-packet probability ≈ p/2.
        for &p in &[0.01, 0.02, 0.05] {
            let exact = per_packet_collision_probability(p, 16);
            let approx = p / 2.0 - p * p / 8.0;
            assert!(
                (exact - approx).abs() < 0.1 * p,
                "p={p}: exact {exact} vs series {approx}"
            );
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        for &(p, r) in &[(0.05, 1usize), (0.10, 2), (0.20, 2), (0.10, 4)] {
            let theory = node_collision_probability(p, 16, r);
            let mc = monte_carlo(p, 16, r, 200_000, 7);
            assert!((mc.measured_p - p).abs() < 0.01);
            assert!(
                (mc.node_collision_rate - theory).abs() < 0.15 * theory.max(0.002),
                "p={p} R={r}: sim {} vs theory {theory}",
                mc.node_collision_rate
            );
        }
    }

    /// Permanent named regression for the recorded
    /// `collision_probability_sane` shrink: `p = 0.2334228658634545,
    /// nodes = 3`. With two senders, the old fractional closed form
    /// interpolated `n = (N−1)/R` between integer group sizes and its
    /// `n <= 1` early return zeroed every `R ≥ 2` point; the exact
    /// per-group product must stay in bounds, decrease in `R` (reaching
    /// exactly 0 once every receiver has ≤ 1 sender), grow with `p`, and
    /// match a Monte-Carlo run of the same partition.
    #[test]
    fn fig3_shrink_regression_nodes3() {
        let p = 0.2334228658634545;
        let probs: Vec<f64> = (1..=4)
            .map(|r| node_collision_probability(p, 3, r))
            .collect();
        for (i, &c) in probs.iter().enumerate() {
            assert!((0.0..=1.0).contains(&c), "R={}: {c} out of bounds", i + 1);
            assert!(c <= p + 1e-12, "R={}: collision rate {c} exceeds p", i + 1);
        }
        // Monotone non-increasing in R; with 2 senders, R ≥ 2 gives each
        // receiver a single sender and collisions become impossible.
        assert!(probs.windows(2).all(|w| w[1] <= w[0] + 1e-15), "{probs:?}");
        assert!(probs[0] > 0.0, "one shared receiver does collide");
        assert_eq!(
            &probs[1..],
            &[0.0, 0.0, 0.0],
            "singleton receivers never collide"
        );
        // Monotone in p at the shrink's R = 1.
        assert!(node_collision_probability(p + 0.05, 3, 1) > probs[0]);
        // At R = 1 the closed form reduces to q² (both of the two senders
        // must fire), and the Monte-Carlo partition agrees.
        let q = p / 2.0;
        assert!((probs[0] - q * q).abs() < 1e-15);
        let mc = monte_carlo(p, 3, 1, 400_000, 13);
        assert!(
            (mc.node_collision_rate - probs[0]).abs() < 0.10 * probs[0],
            "sim {} vs theory {}",
            mc.node_collision_rate,
            probs[0]
        );
    }

    #[test]
    fn monte_carlo_packet_rate_matches_footnote() {
        let p = 0.10;
        let mc = monte_carlo(p, 16, 2, 300_000, 11);
        let theory = per_packet_collision_probability(p, 16);
        assert!(
            (mc.packet_collision_rate - theory).abs() < 0.15 * theory,
            "sim {} vs theory {theory}",
            mc.packet_collision_rate
        );
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn invalid_p_panics() {
        node_collision_probability(1.5, 16, 2);
    }
}
