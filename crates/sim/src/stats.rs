//! Measurement primitives: counters, streaming summaries, histograms,
//! exponentially-weighted rates, and labelled series.
//!
//! These are the building blocks behind every number reported in
//! `EXPERIMENTS.md`: packet-latency breakdowns (Fig 6/7), collision-rate
//! scatter plots (Fig 9), reply-latency distributions (Fig 5), and energy
//! tallies (Fig 8). For *labelled* metrics with a deterministic JSONL /
//! table export, wrap these primitives in [`crate::metrics::Registry`] —
//! report-building code should migrate there rather than accrete more
//! bespoke counter fields.

use std::collections::BTreeMap;
use std::fmt;

/// A saturating event counter.
///
/// Every mutator saturates at `u64::MAX` instead of wrapping: a counter
/// that hits the ceiling stays pinned there (and is obviously bogus)
/// rather than silently restarting near zero mid-experiment. The
/// pathological-burst arithmetic of Figure 4 reaches ~8.2 × 10¹⁰ retries,
/// so overflow is a real concern, not hygiene.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one, saturating at `u64::MAX`.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// This counter as a fraction of `denom`.
    ///
    /// Returns 0.0 — never `NaN` or `±inf` — when `denom` is zero, so a
    /// rate computed over an empty interval reads as "no events" instead
    /// of poisoning downstream means. The result can exceed 1.0 when the
    /// counter genuinely exceeds `denom`; no clamping is applied. A
    /// saturated counter (see type docs) yields a correspondingly
    /// saturated, still-finite ratio.
    pub fn ratio_of(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/min/max over `f64` observations (Welford).
///
/// ```
/// use fsoi_sim::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Rebuilds a summary from its exact internal state, as captured by
    /// [`Summary::raw`] — the round-trip primitive behind byte-exact
    /// report (de)serialization in the cell cache.
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// The exact internal state `(count, mean, m2, min, max)`;
    /// [`Summary::from_raw`] of this tuple reproduces the summary
    /// bit-for-bit (including the empty-state sentinels ±∞).
    pub fn raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over non-negative integers with fixed-width bins plus an
/// overflow bin; also tracks the exact mean.
///
/// Used for reply-latency distributions (Figure 5 uses buckets of cycles up
/// to a `>200` overflow bucket).
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with `num_bins` bins of `bin_width` each; values
    /// at or above `num_bins * bin_width` land in the overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0` or `num_bins == 0`.
    pub fn new(bin_width: u64, num_bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(num_bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Records an observation.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.summary.record(value as f64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Exact mean of all observations.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// The count in bin `idx` (bins are `[idx*w, (idx+1)*w)`).
    pub fn bin(&self, idx: usize) -> u64 {
        self.bins.get(idx).copied().unwrap_or(0)
    }

    /// Count of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of regular bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Width of each regular bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Fraction of observations in bin `idx` (0.0 when empty).
    pub fn fraction(&self, idx: usize) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.bin(idx) as f64 / n as f64
        }
    }

    /// Approximate percentile (linear in bins): smallest value `v` such that
    /// at least `q` (in `[0,1]`) of the mass lies at or below `v`'s bin.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as u64 + 1) * self.bin_width - 1;
            }
        }
        u64::MAX
    }

    /// Rebuilds a histogram from its exact internal state — the
    /// counterpart of [`Histogram::summary`] plus the bin accessors, used
    /// for byte-exact report (de)serialization in the cell cache.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0` or `bins` is empty (same contract as
    /// [`Histogram::new`]).
    pub fn from_raw(bin_width: u64, bins: Vec<u64>, overflow: u64, summary: Summary) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(!bins.is_empty(), "need at least one bin");
        Histogram {
            bin_width,
            bins,
            overflow,
            summary,
        }
    }

    /// The exact running summary over all observations.
    pub fn summary(&self) -> Summary {
        self.summary
    }

    /// Iterates `(bin_start, count)` pairs over the regular bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }
}

/// Exponentially-weighted moving average for on-line rate estimation.
///
/// The FSOI receiver uses one to track the background transmission rate `G`
/// that parameterizes the back-off analysis (Figure 4).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    initialized: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            value: 0.0,
            initialized: false,
        }
    }

    /// Feeds one sample.
    pub fn record(&mut self, x: f64) {
        if self.initialized {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.initialized = true;
        }
    }

    /// Current estimate (0.0 before any sample).
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A labelled map of named scalar metrics, used to assemble report rows.
///
/// Keys iterate in sorted order (BTreeMap) so printed tables are stable.
///
/// This is the flat, scalar-only precursor of
/// [`crate::metrics::Registry`], which additionally carries labels,
/// counters, summaries and histograms plus JSONL/table export; prefer the
/// registry for new measurement code.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    values: BTreeMap<String, f64>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets metric `name` to `value` (overwriting).
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Adds `value` to metric `name` (starting from zero).
    pub fn add(&mut self, name: &str, value: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += value;
    }

    /// Reads metric `name`, defaulting to 0.0.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// True if the metric has been set.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates `(name, value)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Computes the geometric mean of strictly positive values.
///
/// The paper reports all speedups as geometric means. Returns `None` for an
/// empty slice or if any value is non-positive.
///
/// ```
/// use fsoi_sim::stats::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_raw_round_trip_is_bit_exact() {
        let mut s = Summary::new();
        for x in [0.1, -3.25, 7.5e9, 0.0] {
            s.record(x);
        }
        let (count, mean, m2, min, max) = s.raw();
        let back = Summary::from_raw(count, mean, m2, min, max);
        assert_eq!(back, s);
        // Empty summaries round-trip their ±∞ sentinels too.
        let empty = Summary::new();
        let (c, me, m2, mi, ma) = empty.raw();
        assert_eq!(Summary::from_raw(c, me, m2, mi, ma), empty);
    }

    #[test]
    fn histogram_raw_round_trip_is_bit_exact() {
        let mut h = Histogram::new(10, 4);
        for v in [0, 9, 10, 39, 40, 1000] {
            h.record(v);
        }
        let back = Histogram::from_raw(
            h.bin_width(),
            (0..h.num_bins()).map(|i| h.bin(i)).collect(),
            h.overflow(),
            h.summary(),
        );
        assert_eq!(back.bin_width(), h.bin_width());
        assert_eq!(back.num_bins(), h.num_bins());
        assert_eq!(back.overflow(), h.overflow());
        assert_eq!(back.summary(), h.summary());
        assert_eq!(back.percentile(0.5), h.percentile(0.5));
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
        assert!((c.ratio_of(10) - 0.5).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        c.add(17);
        assert_eq!(c.get(), u64::MAX, "mutators must pin at the ceiling");
        // The ratio of a saturated counter is still finite.
        assert!(c.ratio_of(2).is_finite());
        assert_eq!(c.ratio_of(0), 0.0);
    }

    #[test]
    fn summary_mean_var() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        // Merging an empty summary is a no-op.
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        h.record(1000); // overflow
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(4), 1);
        assert_eq!(h.bin(99), 0);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.num_bins(), 5);
        assert_eq!(h.bin_width(), 10);
        assert!((h.fraction(0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 49);
        assert_eq!(h.percentile(1.0), 99);
        let empty = Histogram::new(1, 4);
        assert_eq!(empty.percentile(0.5), 0);
    }

    #[test]
    fn histogram_iter() {
        let mut h = Histogram::new(5, 3);
        h.record(7);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 0), (5, 1), (10, 0)]);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), 0.0);
        e.record(10.0);
        assert_eq!(e.get(), 10.0); // first sample initializes
        for _ in 0..50 {
            e.record(2.0);
        }
        assert!((e.get() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn metric_set_ops() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.set("x", 1.0);
        m.add("x", 2.0);
        m.add("y", 5.0);
        assert_eq!(m.get("x"), 3.0);
        assert_eq!(m.get("missing"), 0.0);
        assert!(m.contains("y"));
        assert_eq!(m.len(), 2);
        let names: Vec<_> = m.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn geomean() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_edge_cases() {
        // Empty histogram: every quantile degenerates to zero.
        let empty = Histogram::new(10, 5);
        assert_eq!(empty.percentile(0.0), 0);
        assert_eq!(empty.percentile(0.5), 0);
        assert_eq!(empty.percentile(1.0), 0);

        // q = 0.0 on a non-empty histogram resolves to the first bin's
        // upper edge; q = 1.0 to the last occupied bin's.
        let mut h = Histogram::new(10, 5);
        for v in [0, 12, 27, 33] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 9);
        assert_eq!(h.percentile(1.0), 39);
        // Out-of-range quantiles clamp rather than panic or wrap.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));

        // Every observation in the overflow bin: no bin can reach a
        // positive target, so the sentinel reports "beyond the range"
        // (q = 0.0 still short-circuits at the first bin's upper edge).
        let mut over = Histogram::new(10, 2);
        for _ in 0..3 {
            over.record(1_000);
        }
        assert_eq!(over.percentile(0.5), u64::MAX);
        assert_eq!(over.percentile(1.0), u64::MAX);
        assert_eq!(over.percentile(0.0), 9);
    }

    #[test]
    fn summary_merge_with_an_empty_side() {
        let mut filled = Summary::new();
        for v in [1.0, 2.0, 3.0] {
            filled.record(v);
        }

        // Empty other side: the merge is a no-op.
        let mut a = filled;
        a.merge(&Summary::new());
        assert_eq!(a, filled);

        // Empty self: the merge adopts the other side wholesale (in
        // particular min/max must not keep the ±infinity sentinels).
        let mut b = Summary::new();
        b.merge(&filled);
        assert_eq!(b.count(), 3);
        assert_eq!(b.mean(), filled.mean());
        assert_eq!(b.min(), Some(1.0));
        assert_eq!(b.max(), Some(3.0));
        assert_eq!(b, filled);

        // Both sides empty: still empty, still no observations.
        let mut e = Summary::new();
        e.merge(&Summary::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
    }
}
