//! Energy accounting for the optical interconnect.
//!
//! The architectural energy claims of §7.2 rest on three properties of the
//! signaling chain: transmitters sleep when idle (standby bias below
//! threshold), receivers stay on, and there is no per-hop buffering or
//! switching energy at all. This module converts the link budget of
//! `fsoi-optics` and the traffic counters of the network into joules
//! (see [`NetStats`]).
//!
//! [`NetStats`]: crate::network::NetStats

use crate::lane::Lanes;
use crate::network::NetStats;
use fsoi_optics::link::LinkBudget;

/// Per-node, per-network energy/power parameters derived from a link
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsoiPowerModel {
    /// Transmit energy per bit while actively lasing, joules.
    pub tx_energy_per_bit_j: f64,
    /// Receive chain energy per bit-time, joules (receivers are always on;
    /// this is their power divided by the bit rate, used for the active
    /// share attribution).
    pub rx_energy_per_bit_j: f64,
    /// Standby power per transmit VCSEL+driver, watts.
    pub tx_standby_w: f64,
    /// Always-on power per receiver bit (PD + TIA + limiting amp), watts.
    pub rx_always_on_w: f64,
    /// Core clock frequency, Hz (for cycle↔second conversion).
    pub core_clock_hz: f64,
}

/// An energy report for a simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Dynamic transmit energy, joules.
    pub tx_dynamic_j: f64,
    /// Transmitter standby energy, joules.
    pub tx_standby_j: f64,
    /// Receiver static (always-on) energy, joules.
    pub rx_static_j: f64,
    /// Confirmation-channel energy, joules.
    pub confirmation_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.tx_dynamic_j + self.tx_standby_j + self.rx_static_j + self.confirmation_j
    }

    /// Average power over `cycles` at `core_clock_hz`, watts.
    pub fn average_power_w(&self, cycles: u64, core_clock_hz: f64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_j() / (cycles as f64 / core_clock_hz)
        }
    }
}

impl FsoiPowerModel {
    /// Builds the model from a link budget at the given core clock
    /// (the paper's 3.3 GHz).
    pub fn from_budget(budget: &LinkBudget, core_clock_hz: f64) -> Self {
        assert!(core_clock_hz > 0.0, "core clock must be positive");
        FsoiPowerModel {
            tx_energy_per_bit_j: budget.tx_energy_per_bit_pj * 1e-12,
            rx_energy_per_bit_j: budget.rx_energy_per_bit_pj * 1e-12,
            tx_standby_w: budget.tx_standby_mw * 1e-3,
            rx_always_on_w: budget.rx_power_mw * 1e-3,
            core_clock_hz,
        }
    }

    /// The paper's default: Table 1 budget at 3.3 GHz.
    pub fn paper_default() -> Self {
        let budget = fsoi_optics::link::OpticalLink::paper_default().budget();
        Self::from_budget(&budget, 3.3e9)
    }

    /// Computes the network energy over `cycles` for a run summarized by
    /// `stats`, for a system of `nodes` nodes with lane configuration
    /// `lanes`.
    ///
    /// Receive chains (data + meta + confirmation receivers) are charged
    /// for the whole interval; transmitters are charged per transmitted
    /// bit plus standby for the idle VCSELs.
    pub fn network_energy(
        &self,
        stats: &NetStats,
        lanes: &Lanes,
        nodes: usize,
        cycles: u64,
        confirmations: u64,
    ) -> EnergyReport {
        let seconds = cycles as f64 / self.core_clock_hz;
        let meta_bits = lanes.meta.packet_bits as f64;
        let data_bits = lanes.data.packet_bits as f64;
        let tx_bits =
            stats.transmissions[0] as f64 * meta_bits + stats.transmissions[1] as f64 * data_bits;
        // One standby transmitter lane set per node: meta + data +
        // confirmation VCSELs (dedicated-lane inventory idles dark; the
        // standby bias applies to the active lane set only, which is what
        // Table 3's per-node transmitter provisioning powers).
        let standby_lasers = (lanes.lane_bits() + 1) as f64 * nodes as f64;
        // Receivers: R per lane class × lane width, plus the confirmation
        // receiver, all always-on.
        let rx_bits_per_node = (lanes.meta.receivers * lanes.meta.vcsels
            + lanes.data.receivers * lanes.data.vcsels
            + 1) as f64;
        let confirmation_bits = confirmations as f64; // single-bit beams

        EnergyReport {
            tx_dynamic_j: tx_bits * self.tx_energy_per_bit_j,
            tx_standby_j: standby_lasers * self.tx_standby_w * seconds,
            rx_static_j: rx_bits_per_node * nodes as f64 * self.rx_always_on_w * seconds,
            confirmation_j: confirmation_bits * self.tx_energy_per_bit_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsoiConfig;
    use crate::network::FsoiNetwork;
    use crate::packet::{Packet, PacketClass};
    use crate::topology::NodeId;

    #[test]
    fn model_from_paper_budget() {
        let m = FsoiPowerModel::paper_default();
        assert!((m.tx_energy_per_bit_j * 1e12 - 0.18).abs() < 0.02);
        assert!((m.rx_energy_per_bit_j * 1e12 - 0.105).abs() < 0.01);
        assert!((m.tx_standby_w * 1e3 - 0.43).abs() < 1e-6);
        assert!((m.rx_always_on_w * 1e3 - 4.2).abs() < 1e-6);
    }

    #[test]
    fn idle_network_burns_only_static_power() {
        let m = FsoiPowerModel::paper_default();
        let stats = NetStats::default();
        let lanes = Lanes::paper_default();
        let e = m.network_energy(&stats, &lanes, 16, 1_000_000, 0);
        assert_eq!(e.tx_dynamic_j, 0.0);
        assert_eq!(e.confirmation_j, 0.0);
        assert!(e.tx_standby_j > 0.0);
        assert!(e.rx_static_j > 0.0);
        // Average idle power of the 16-node optical subsystem stays in the
        // low watts (the paper reports 1.8 W average under load).
        let p = e.average_power_w(1_000_000, 3.3e9);
        assert!(p > 0.5 && p < 3.0, "idle power = {p} W");
    }

    #[test]
    fn traffic_adds_dynamic_energy() {
        let m = FsoiPowerModel::paper_default();
        let lanes = Lanes::paper_default();
        let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 1);
        for src in 0..8 {
            net.inject(Packet::new(
                NodeId(src),
                NodeId(src + 8),
                PacketClass::Data,
                0,
            ))
            .unwrap();
        }
        net.run(20);
        let cycles = net.now().as_u64();
        let conf = net.confirmations_sent();
        let e = m.network_energy(net.stats(), &lanes, 16, cycles, conf);
        assert!(e.tx_dynamic_j > 0.0);
        assert!(e.confirmation_j > 0.0);
        // 8 data packets × 360 bits × ~0.18 pJ ≈ 0.5 nJ.
        assert!((e.tx_dynamic_j - 8.0 * 360.0 * 0.18e-12).abs() < 0.2e-9);
    }

    #[test]
    fn energy_report_totals() {
        let r = EnergyReport {
            tx_dynamic_j: 1.0,
            tx_standby_j: 2.0,
            rx_static_j: 3.0,
            confirmation_j: 4.0,
        };
        assert_eq!(r.total_j(), 10.0);
        assert_eq!(r.average_power_w(0, 3.3e9), 0.0);
        let p = r.average_power_w(33, 3.3e9);
        assert!((p - 10.0 / 1e-8).abs() < 1.0);
    }
}
