//! Deterministic associative containers.
//!
//! The repo's determinism contract — same-seed runs produce byte-identical
//! exports — dies quietly the moment a `std::collections::HashMap` or
//! `HashSet` with the default `RandomState` hasher sits on a path that
//! feeds statistics: the hasher is seeded from OS entropy per process, so
//! iteration order (and anything derived from it, like eviction-victim
//! tie-breaks or export ordering) changes run to run.
//!
//! [`DetMap`] and [`DetSet`] are the sanctioned replacements: thin
//! wrappers over `BTreeMap`/`BTreeSet` that keep the familiar map/set API
//! while guaranteeing
//!
//! * iteration in strict ascending key order, identical in every process,
//! * no dependence on OS entropy, ASLR, or hasher state,
//! * `O(log n)` operations — for the simulator's table sizes (MSHRs,
//!   directory slices, in-flight slot groups) the difference from a hash
//!   table is noise, and the paper's exports are regenerated from these
//!   structures, so order stability wins.
//!
//! The `fsoi-lint` rule **D1** rejects raw `HashMap`/`HashSet` in
//! simulation library code and points offenders here.
//!
//! ```
//! use fsoi_sim::det::{DetMap, DetSet};
//! let mut m: DetMap<u64, &str> = DetMap::new();
//! m.insert(3, "c");
//! m.insert(1, "a");
//! let keys: Vec<u64> = m.keys().copied().collect();
//! assert_eq!(keys, vec![1, 3], "iteration order is the key order");
//!
//! let mut s: DetSet<u64> = DetSet::new();
//! s.insert(9);
//! s.insert(4);
//! assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 9]);
//! ```

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};

/// A deterministic map: `BTreeMap` behind a name the lint can whitelist.
///
/// Only the subset of the map API the workspace uses is delegated; reach
/// the rest through [`DetMap::as_btree`] / [`DetMap::as_btree_mut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Borrows the value at `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutably borrows the value at `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// The standard entry API (`or_default`, `or_insert_with`, …).
    pub fn entry(&mut self, key: K) -> btree_map::Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates `(key, value)` in ascending key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Keeps only the entries for which `f` returns true.
    pub fn retain(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        self.inner.retain(f);
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// The underlying `BTreeMap`, for APIs not delegated here.
    pub fn as_btree(&self) -> &BTreeMap<K, V> {
        &self.inner
    }

    /// Mutable access to the underlying `BTreeMap`.
    pub fn as_btree_mut(&mut self) -> &mut BTreeMap<K, V> {
        &mut self.inner
    }
}

impl<K: Ord, V> std::ops::Index<&K> for DetMap<K, V> {
    type Output = V;
    /// Panics if `key` is absent, like the std map `Index` impls.
    fn index(&self, key: &K) -> &V {
        &self.inner[key]
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap {
            inner: BTreeMap::from_iter(iter),
        }
    }
}

/// A deterministic set: `BTreeSet` behind a name the lint can whitelist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Inserts `value`; returns true if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Removes `value`; returns true if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// True if `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the set holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }

    /// Keeps only the elements for which `f` returns true.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.inner.retain(f);
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// The underlying `BTreeSet`, for APIs not delegated here.
    pub fn as_btree(&self) -> &BTreeSet<T> {
        &self.inner
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T: Ord> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet {
            inner: BTreeSet::from_iter(iter),
        }
    }
}

/// A deterministic set of small indices (node ids) backed by a fixed
/// array of `u64` words.
///
/// The hot-path replacement for `DetSet<NodeId>` where the universe is
/// bounded by the node count (≤ [`NodeMask::CAPACITY`]): membership is one
/// shift-and-mask into the owning word, and iteration walks set bits in
/// strictly ascending index order — low word first, LSB first within each
/// word, the same order a `DetSet` would produce — so swapping one for the
/// other cannot perturb any export. Like its siblings above, it depends on
/// nothing but its own bits: no hasher, no OS entropy (lint rule D1).
///
/// The mask started life as a single `u128`; the word array exists so the
/// capacity can track design-space studies past the paper's 64-node system
/// (256-node grids) without changing the API or the iteration order any
/// byte-identity pin depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeMask {
    words: [u64; Self::WORDS],
}

impl NodeMask {
    /// Number of 64-bit words backing the mask.
    const WORDS: usize = 4;

    /// Largest index the mask can hold, exclusive.
    pub const CAPACITY: usize = Self::WORDS * 64;

    /// Creates an empty mask.
    pub fn new() -> Self {
        NodeMask {
            words: [0; Self::WORDS],
        }
    }

    /// Inserts `index`; returns true if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CAPACITY`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < Self::CAPACITY,
            "NodeMask index {index} out of range"
        );
        let bit = 1u64 << (index % 64);
        let word = &mut self.words[index / 64];
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `index`; returns true if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CAPACITY`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(
            index < Self::CAPACITY,
            "NodeMask index {index} out of range"
        );
        let bit = 1u64 << (index % 64);
        let word = &mut self.words[index / 64];
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// True if `index` is present. Out-of-range indices are simply absent.
    pub fn contains(&self, index: usize) -> bool {
        index < Self::CAPACITY && self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of set indices.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the mask holds nothing.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words = [0; Self::WORDS];
    }

    /// Iterates set indices in ascending order.
    pub fn iter(&self) -> NodeMaskIter {
        NodeMaskIter {
            words: self.words,
            word: 0,
        }
    }
}

impl IntoIterator for &NodeMask {
    type Item = usize;
    type IntoIter = NodeMaskIter;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<usize> for NodeMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut mask = NodeMask::new();
        for i in iter {
            mask.insert(i);
        }
        mask
    }
}

/// Ascending-order iterator over the set bits of a [`NodeMask`].
///
/// Walks the words low-to-high and the bits of each word LSB-first, so the
/// yielded indices are strictly ascending across word boundaries.
#[derive(Debug, Clone)]
pub struct NodeMaskIter {
    words: [u64; NodeMask::WORDS],
    word: usize,
}

impl Iterator for NodeMaskIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        while self.word < NodeMask::WORDS {
            let bits = self.words[self.word];
            if bits == 0 {
                self.word += 1;
                continue;
            }
            let offset = bits.trailing_zeros() as usize;
            self.words[self.word] = bits & (bits - 1); // clear the lowest set bit
            return Some(self.word * 64 + offset);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.words[self.word..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeMaskIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iterates_in_key_order() {
        let mut m = DetMap::new();
        for k in [5u64, 1, 9, 3] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(&5), Some(&50));
        assert_eq!(m.remove(&5), Some(50));
        assert!(!m.contains_key(&5));
    }

    #[test]
    fn map_entry_api_round_trips() {
        let mut m: DetMap<u32, Vec<u32>> = DetMap::new();
        m.entry(7).or_default().push(1);
        m.entry(7).or_default().push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
    }

    #[test]
    fn map_retain_and_collect() {
        let mut m: DetMap<u32, u32> = (0..10u32).map(|k| (k, k)).collect();
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        let pairs: Vec<(u32, u32)> = m.into_iter().collect();
        assert_eq!(pairs, vec![(0, 0), (2, 2), (4, 4), (6, 6), (8, 8)]);
    }

    #[test]
    fn set_iterates_in_order() {
        let mut s = DetSet::new();
        assert!(s.insert(4u64));
        assert!(s.insert(2));
        assert!(!s.insert(4), "duplicate insert reports absence");
        assert!(s.contains(&2));
        assert!(s.remove(&2));
        assert!(!s.remove(&2));
        s.insert(1);
        s.insert(3);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn set_retain_and_from_iter() {
        let mut s: DetSet<u32> = (0..10u32).collect();
        s.retain(|x| x % 3 == 0);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn node_mask_matches_det_set_semantics() {
        let mut mask = NodeMask::new();
        let mut set: DetSet<usize> = DetSet::new();
        for i in [5usize, 1, 127, 5, 64, 0] {
            assert_eq!(mask.insert(i), set.insert(i), "insert({i})");
        }
        assert_eq!(mask.len(), set.len());
        assert!(!mask.is_empty());
        for i in 0..NodeMask::CAPACITY {
            assert_eq!(mask.contains(i), set.contains(&i), "contains({i})");
        }
        // Iteration order is ascending, exactly like the BTree set.
        let from_mask: Vec<usize> = mask.iter().collect();
        let from_set: Vec<usize> = set.iter().copied().collect();
        assert_eq!(from_mask, from_set);
        assert_eq!(mask.iter().len(), mask.len());
        assert_eq!(mask.remove(64), set.remove(&64));
        assert_eq!(mask.remove(64), set.remove(&64), "double remove is false");
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 1, 5, 127]);
        mask.clear();
        assert!(mask.is_empty() && mask.iter().next().is_none());
    }

    #[test]
    fn node_mask_crosses_word_boundaries_in_order() {
        // One bit on each side of every 64-bit word seam, inserted in a
        // scrambled order: iteration must come back strictly ascending.
        let boundaries = [64usize, 255, 0, 128, 63, 192, 127, 191];
        let mut mask = NodeMask::new();
        for i in boundaries {
            assert!(mask.insert(i), "insert({i})");
        }
        assert_eq!(
            mask.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 191, 192, 255]
        );
        assert_eq!(mask.len(), 8);
        assert!(mask.remove(255) && !mask.contains(255));
        assert!(mask.contains(192), "neighbors survive a boundary remove");
        assert_eq!(mask.iter().last(), Some(192));
    }

    #[test]
    fn node_mask_round_trips_from_iterator() {
        let mask: NodeMask = [9usize, 3, 100].into_iter().collect();
        assert_eq!((&mask).into_iter().collect::<Vec<_>>(), vec![3, 9, 100]);
        assert!(!mask.contains(4));
        assert!(!mask.contains(usize::MAX), "out of range is just absent");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_mask_insert_past_capacity_panics() {
        NodeMask::new().insert(NodeMask::CAPACITY);
    }

    #[test]
    fn clear_empties_both() {
        let mut m: DetMap<u8, u8> = [(1, 1)].into_iter().collect();
        let mut s: DetSet<u8> = [1].into_iter().collect();
        assert!(!m.is_empty() && !s.is_empty());
        m.clear();
        s.clear();
        assert!(m.is_empty() && s.is_empty());
        assert!(m.as_btree().is_empty() && s.as_btree().is_empty());
    }
}
