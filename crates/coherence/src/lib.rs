//! MESI directory cache-coherence substrate — the protocol of the paper's
//! Table 2, with every stable and transient state of both the L1 cache
//! controller and the L2 directory controller.
//!
//! The controllers here are *untimed* message-driven state machines: they
//! consume processor or network events and emit outgoing messages. The CMP
//! simulator (`fsoi-cmp`) supplies the timing — cache access latencies,
//! network transport (optical or mesh), and memory channels — which keeps
//! this crate independently testable against the transition table.
//!
//! * [`protocol`] — states, events and messages (Table 2 vocabulary);
//! * [`cache`] — set-associative arrays with LRU replacement;
//! * [`l1`] — the L1 cache controller (M/E/S/I + I.SD, I.MD, S.MA);
//! * [`directory`] — the L2 directory controller (DI/DV/DS/DM + nine
//!   transient states), including `z`-stall queues and the Req(Upg) →
//!   Req(Ex) reinterpretation race;
//! * [`sync`] — load-linked/store-conditional and barrier semantics built
//!   on the protocol, with hooks for the paper's §5.1 confirmation-channel
//!   optimization.
//!
//! # Example
//!
//! ```
//! use fsoi_coherence::l1::L1Controller;
//! use fsoi_coherence::protocol::{L1State, LineAddr};
//!
//! let mut l1 = L1Controller::new(0, 64, 2, 32);
//! // A load to an uncached line misses and issues a shared request.
//! let out = l1.read(LineAddr(0x40));
//! assert!(!out.hit);
//! assert_eq!(l1.state_of(LineAddr(0x40)), L1State::ISD);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod directory;
pub mod l1;
pub mod protocol;
pub mod sync;
