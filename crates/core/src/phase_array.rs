//! Optical phase-array (OPA) beam steering for large systems (§3, §4.1).
//!
//! With dedicated lanes the VCSEL count grows as `N²`; a phase array keeps
//! the per-node laser count constant by steering a single beam. The cost is
//! a retarget penalty — the paper models "one cycle delay in re-setting the
//! phase controller register" for the 64-node system — paid only when
//! consecutive transmissions aim at different destinations.

use crate::topology::NodeId;

/// Per-node steering state of a phase-array transmitter.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseArraySteering {
    current_target: Option<NodeId>,
    retargets: u64,
    transmissions: u64,
}

impl PhaseArraySteering {
    /// Creates an unsteered array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a transmission to `target`, returning the setup penalty in
    /// cycles (`setup_cycles` when retargeting, 0 when the beam is already
    /// aimed there).
    pub fn aim(&mut self, target: NodeId, setup_cycles: u64) -> u64 {
        self.transmissions += 1;
        if self.current_target == Some(target) {
            0
        } else {
            self.current_target = Some(target);
            self.retargets += 1;
            setup_cycles
        }
    }

    /// The current aim, if any.
    pub fn current_target(&self) -> Option<NodeId> {
        self.current_target
    }

    /// How many transmissions required retargeting.
    pub fn retargets(&self) -> u64 {
        self.retargets
    }

    /// Total transmissions registered.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Fraction of transmissions that paid the setup penalty.
    pub fn retarget_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.retargets as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_aim_pays_setup() {
        let mut s = PhaseArraySteering::new();
        assert_eq!(s.current_target(), None);
        assert_eq!(s.aim(NodeId(3), 1), 1);
        assert_eq!(s.current_target(), Some(NodeId(3)));
    }

    #[test]
    fn repeated_target_is_free() {
        let mut s = PhaseArraySteering::new();
        s.aim(NodeId(3), 1);
        assert_eq!(s.aim(NodeId(3), 1), 0);
        assert_eq!(s.aim(NodeId(3), 1), 0);
        assert_eq!(s.retargets(), 1);
        assert_eq!(s.transmissions(), 3);
        assert!((s.retarget_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn switching_targets_pays_each_time() {
        let mut s = PhaseArraySteering::new();
        assert_eq!(s.aim(NodeId(1), 2), 2);
        assert_eq!(s.aim(NodeId(2), 2), 2);
        assert_eq!(s.aim(NodeId(1), 2), 2);
        assert_eq!(s.retargets(), 3);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(PhaseArraySteering::new().retarget_rate(), 0.0);
    }
}
