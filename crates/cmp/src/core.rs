//! The processor-core model.
//!
//! Each core executes its synthetic instruction stream in order: compute
//! gaps advance time, loads block on L1 misses, stores are posted (the
//! store buffer hides their latency until a structural stall), and
//! lock/barrier operations run small multi-step state machines that
//! generate real coherence traffic (spin probes, sense-line reloads) or —
//! with §5.1 subscriptions on — wait for confirmation-channel pushes.

use crate::workload::{CoreWorkload, Op};
use fsoi_coherence::protocol::LineAddr;
use fsoi_sim::Cycle;

/// What a core is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing; next operation at `next_at`.
    Ready,
    /// Blocked on a load miss.
    WaitRead {
        /// The missing line.
        line: LineAddr,
        /// When the load issued (for the reply-latency histogram).
        issued_at: Cycle,
    },
    /// Lock acquisition: the lock-word read is in flight.
    LockRead {
        /// Which lock.
        lock: usize,
        /// The lock's line.
        line: LineAddr,
    },
    /// Spinning on a held lock; next probe at the given time.
    SpinLock {
        /// Which lock.
        lock: usize,
        /// Next probe time.
        next_probe: Cycle,
    },
    /// Subscribed to the lock word; waiting for a confirmation-channel
    /// push.
    WaitLockWake {
        /// Which lock.
        lock: usize,
    },
    /// In-flight probe read of the lock word while spinning.
    SpinLockRead {
        /// Which lock.
        lock: usize,
    },
    /// Spinning on the barrier sense word.
    SpinBarrier {
        /// The episode the core entered at.
        episode: u64,
        /// Next probe time.
        next_probe: Cycle,
    },
    /// In-flight probe read of the sense word.
    SpinBarrierRead {
        /// The episode the core entered at.
        episode: u64,
    },
    /// Subscribed to the sense word.
    WaitBarrierWake {
        /// The episode the core entered at.
        episode: u64,
    },
    /// Stream exhausted.
    Done,
}

/// Per-core statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoreStats {
    /// Cycles spent executing (issuing ops or computing).
    pub active_cycles: u64,
    /// Cycles spent blocked (misses, locks, barriers).
    pub stalled_cycles: u64,
    /// Loads that blocked.
    pub read_misses: u64,
    /// Lock acquisitions completed.
    pub lock_acquires: u64,
    /// Barrier episodes passed.
    pub barriers_passed: u64,
}

/// One processor core.
#[derive(Debug)]
pub struct Core {
    /// Core / node id.
    pub id: usize,
    /// Its instruction stream.
    pub workload: CoreWorkload,
    /// Current activity.
    pub state: CoreState,
    /// Earliest cycle the next operation may issue.
    pub next_at: Cycle,
    /// An operation that hit a structural stall and must be retried.
    pub pending_op: Option<Op>,
    /// Statistics.
    pub stats: CoreStats,
}

impl Core {
    /// Creates a core over its workload.
    pub fn new(id: usize, workload: CoreWorkload) -> Self {
        Core {
            id,
            workload,
            state: CoreState::Ready,
            next_at: Cycle::ZERO,
            pending_op: None,
            stats: CoreStats::default(),
        }
    }

    /// True when the stream is exhausted and the core has retired.
    pub fn is_done(&self) -> bool {
        self.state == CoreState::Done
    }

    /// Whether the core wants to issue at `now`.
    pub fn wants_to_issue(&self, now: Cycle) -> bool {
        self.state == CoreState::Ready && self.next_at <= now
    }

    /// The next operation: a retried stall first, then the stream.
    pub fn take_op(&mut self) -> Option<Op> {
        self.pending_op.take().or_else(|| self.workload.next_op())
    }

    /// Accounts one cycle of activity.
    pub fn account_cycle(&mut self, now: Cycle) {
        match self.state {
            CoreState::Done => {}
            CoreState::Ready if self.next_at > now => self.stats.active_cycles += 1,
            CoreState::Ready => self.stats.active_cycles += 1,
            _ => self.stats.stalled_cycles += 1,
        }
    }

    /// Accounts `n` cycles at once. Only valid when the caller knows the
    /// state cannot change across the span (the fast-forward path skips
    /// cycles strictly before any event that could transition a core, so
    /// the per-cycle classification is constant).
    pub fn account_cycles(&mut self, n: u64) {
        match self.state {
            CoreState::Done => {}
            CoreState::Ready => self.stats.active_cycles += n,
            _ => self.stats.stalled_cycles += n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppProfile;

    fn core() -> Core {
        let w = CoreWorkload::new(AppProfile::by_name("tsp").unwrap(), 0, 32, 1);
        Core::new(0, w)
    }

    #[test]
    fn issue_gating() {
        let mut c = core();
        assert!(c.wants_to_issue(Cycle(0)));
        c.next_at = Cycle(10);
        assert!(!c.wants_to_issue(Cycle(5)));
        assert!(c.wants_to_issue(Cycle(10)));
        c.state = CoreState::WaitRead {
            line: LineAddr(0),
            issued_at: Cycle(0),
        };
        assert!(!c.wants_to_issue(Cycle(100)));
    }

    #[test]
    fn pending_op_takes_priority() {
        let mut c = core();
        c.pending_op = Some(Op::Compute(5));
        assert_eq!(c.take_op(), Some(Op::Compute(5)));
        assert!(c.pending_op.is_none());
        assert!(c.take_op().is_some(), "stream continues");
    }

    #[test]
    fn accounting_splits_active_and_stalled() {
        let mut c = core();
        c.account_cycle(Cycle(0)); // Ready → active
        c.state = CoreState::WaitRead {
            line: LineAddr(0),
            issued_at: Cycle(0),
        };
        c.account_cycle(Cycle(1));
        c.state = CoreState::Done;
        c.account_cycle(Cycle(2));
        assert_eq!(c.stats.active_cycles, 1);
        assert_eq!(c.stats.stalled_cycles, 1);
    }

    #[test]
    fn done_detection() {
        let mut c = core();
        assert!(!c.is_done());
        c.state = CoreState::Done;
        assert!(c.is_done());
    }
}
