//! Run reports: everything the experiment harness prints.

use crate::energy::ChipEnergy;
use crate::interconnect::LatencyAttribution;
use fsoi_sim::stats::Histogram;

/// Traffic classes used in Figure 10's data-lane collision breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPacketKind {
    /// Memory fetch completions (MemAck).
    Memory,
    /// Directory → L1 data replies.
    Reply,
    /// Writebacks (incl. dirty InvAck/DwgAck).
    WriteBack,
}

impl DataPacketKind {
    /// Dense index 0..3.
    pub fn index(self) -> usize {
        match self {
            DataPacketKind::Memory => 0,
            DataPacketKind::Reply => 1,
            DataPacketKind::WriteBack => 2,
        }
    }

    /// Plot label.
    pub fn label(self) -> &'static str {
        match self {
            DataPacketKind::Memory => "Memory packets",
            DataPacketKind::Reply => "Reply",
            DataPacketKind::WriteBack => "WriteBack",
        }
    }
}

/// The complete result of one application × network run.
#[derive(Debug)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Network name.
    pub network: String,
    /// Wall-clock cycles to finish the fixed workload.
    pub cycles: u64,
    /// Mean packet-latency attribution (Figure 6/7 stack).
    pub attribution: LatencyAttribution,
    /// Read-miss reply latency distribution (Figure 5).
    pub reply_latency: Histogram,
    /// Meta-lane first-transmission probability per node-slot (Figure 9 x).
    pub meta_tx_probability: f64,
    /// Data-lane transmission probability.
    pub data_tx_probability: f64,
    /// Meta collision rate (collided / transmissions).
    pub meta_collision_rate: f64,
    /// Data collision rate.
    pub data_collision_rate: f64,
    /// Packets sent per class `[meta, data]`.
    pub packets_sent: [u64; 2],
    /// Data packets delivered per kind (Figure 10 denominators).
    pub data_by_kind: [u64; 3],
    /// Data packets that collided at least once, per kind, plus a fourth
    /// bucket for re-collided retransmissions (Figure 10 numerators).
    pub collided_by_kind: [u64; 4],
    /// Meta packets elided thanks to confirmation-acks (§5.1).
    pub acks_elided: u64,
    /// Packets avoided by boolean subscriptions (§5.1).
    pub subscription_packets_saved: u64,
    /// Mean L1 miss rate across cores.
    pub l1_miss_rate: f64,
    /// Sum of per-core active cycles.
    pub active_cycles: u64,
    /// Sum of per-core stalled cycles.
    pub stalled_cycles: u64,
    /// Chip energy.
    pub energy: ChipEnergy,
    /// Mean collision-resolution delay among collided data packets.
    pub data_resolution_delay: f64,
    /// Hint accuracy: correct / issued (FSOI data lane).
    pub hint_accuracy: f64,
    /// Wrong-winner rate: wrong / issued.
    pub hint_wrong_rate: f64,
    /// Packets dropped by raw bit errors and recovered by retransmission.
    pub bit_error_drops: u64,
}

impl RunReport {
    /// Speedup of this run relative to a baseline's cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles as f64
    }

    /// Mean total packet latency.
    pub fn mean_packet_latency(&self) -> f64 {
        self.attribution.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexing() {
        assert_eq!(DataPacketKind::Memory.index(), 0);
        assert_eq!(DataPacketKind::Reply.index(), 1);
        assert_eq!(DataPacketKind::WriteBack.index(), 2);
        assert!(DataPacketKind::Reply.label().contains("Reply"));
    }

    #[test]
    fn speedup_math() {
        let r = RunReport {
            app: "x".into(),
            network: "fsoi".into(),
            cycles: 500,
            attribution: LatencyAttribution::default(),
            reply_latency: Histogram::new(10, 20),
            meta_tx_probability: 0.0,
            data_tx_probability: 0.0,
            meta_collision_rate: 0.0,
            data_collision_rate: 0.0,
            packets_sent: [0, 0],
            data_by_kind: [0; 3],
            collided_by_kind: [0; 4],
            acks_elided: 0,
            subscription_packets_saved: 0,
            l1_miss_rate: 0.0,
            active_cycles: 0,
            stalled_cycles: 0,
            energy: ChipEnergy::default(),
            data_resolution_delay: 0.0,
            hint_accuracy: 0.0,
            hint_wrong_rate: 0.0,
            bit_error_drops: 0,
        };
        assert!((r.speedup_vs(1000) - 2.0).abs() < 1e-12);
    }
}
