//! Property tests for the Corona-style ring crossbar (on the in-repo
//! `fsoi-check` harness).

use fsoi_check::{any_bool, checker, vec_of};
use fsoi_ring::config::RingConfig;
use fsoi_ring::network::{RingNetwork, RingPacket};

/// Every accepted packet is delivered exactly once.
#[test]
fn ring_conserves_packets() {
    checker!().check(
        "ring_conserves_packets",
        vec_of((0usize..16, 1usize..16, any_bool()), 1..150),
        |script| {
            let mut net = RingNetwork::new(RingConfig::nodes(16));
            let mut accepted = 0u64;
            for &(src, off, data) in script {
                let dst = (src + off) % 16;
                let pkt = if data {
                    RingPacket::data(src, dst, accepted)
                } else {
                    RingPacket::meta(src, dst, accepted)
                };
                if net.inject(pkt).is_ok() {
                    accepted += 1;
                }
                net.tick();
            }
            let mut delivered: Vec<u64> =
                net.drain_delivered().iter().map(|d| d.packet.tag).collect();
            for _ in 0..50_000 {
                net.tick();
                delivered.extend(net.drain_delivered().iter().map(|d| d.packet.tag));
                if net.is_idle() {
                    break;
                }
            }
            assert!(net.is_idle(), "ring must drain");
            delivered.sort_unstable();
            assert_eq!(delivered, (0..accepted).collect::<Vec<_>>());
        },
    );
}

/// Per home channel, packets deliver in injection order (the token
/// serves the writer queue FIFO) and never overlap in channel time.
#[test]
fn home_channels_serialize_fifo() {
    checker!().check(
        "home_channels_serialize_fifo",
        vec_of(1usize..16, 2..20),
        |writers| {
            let mut net = RingNetwork::new(RingConfig::nodes(16));
            let mut wanted = 0;
            for (i, &w) in writers.iter().enumerate() {
                if net.inject(RingPacket::data(w, 0, i as u64)).is_ok() {
                    wanted += 1;
                }
            }
            let mut out = Vec::new();
            for _ in 0..100_000 {
                net.tick();
                out.extend(net.drain_delivered());
                if net.is_idle() {
                    break;
                }
            }
            assert_eq!(out.len(), wanted);
            // FIFO order of tags.
            let tags: Vec<u64> = out.iter().map(|d| d.packet.tag).collect();
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            assert_eq!(&tags, &sorted, "home channel is FIFO");
            // Deliveries are at least a serialization apart (one writer at
            // a time holds the token).
            let times: Vec<u64> = out.iter().map(|d| d.delivered_at.as_u64()).collect();
            for w in times.windows(2) {
                assert!(w[1] >= w[0] + 3, "data serialization is 3 cycles: {w:?}");
            }
        },
    );
}

/// Latency is bounded below by the physical floor: idle token wait +
/// serialization + half-loop flight.
#[test]
fn latency_floor() {
    checker!().check(
        "latency_floor",
        (0usize..16, 1usize..16, any_bool()),
        |&(src, off, data)| {
            let cfg = RingConfig::nodes(16);
            let mut net = RingNetwork::new(cfg);
            let dst = (src + off) % 16;
            let pkt = if data {
                RingPacket::data(src, dst, 0)
            } else {
                RingPacket::meta(src, dst, 0)
            };
            net.inject(pkt).unwrap();
            let mut out = Vec::new();
            for _ in 0..200 {
                net.tick();
                out.extend(net.drain_delivered());
                if !out.is_empty() {
                    break;
                }
            }
            let ser = if data {
                cfg.data_serialization
            } else {
                cfg.meta_serialization
            };
            let floor = cfg.idle_token_wait() + ser + cfg.ring_circulation_cycles / 2;
            assert_eq!(out[0].latency(), floor);
        },
    );
}
