//! A stable, time-ordered event queue.
//!
//! The simulators in this workspace are primarily cycle-driven, but several
//! components (memory controllers, confirmation lasers, timeout machinery)
//! schedule work at arbitrary future cycles. [`EventQueue`] provides that
//! service with a crucial property for reproducibility: events scheduled for
//! the same cycle are delivered in the order they were scheduled (FIFO
//! tie-break), so simulation results never depend on heap internals.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then by insertion sequence.
#[derive(Debug)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-scheduled) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events of type `T` with FIFO tie-breaking.
///
/// ```
/// use fsoi_sim::{Cycle, event::EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), "late");
/// q.push(Cycle(1), "first");
/// q.push(Cycle(1), "second");
/// assert_eq!(q.pop(), Some((Cycle(1), "first")));
/// assert_eq!(q.pop(), Some((Cycle(1), "second")));
/// assert_eq!(q.pop(), Some((Cycle(3), "late")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`. The main loop of a cycle-driven simulator calls this once per
    /// cycle (in a `while let` loop) to drain everything due.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A time-ordered queue for the special case where events are scheduled
/// in non-decreasing time order — fixed-delay pipelines such as link
/// traversal, where everything pushed at cycle `t` is due at `t + L`.
///
/// Under that restriction a plain FIFO ring *is* the earliest-first,
/// FIFO-tie-broken order of [`EventQueue`], with O(1) push/pop and no
/// heap comparisons. Push order is pop order; determinism is inherited
/// from the caller's push order exactly as with the heap.
///
/// # Panics
///
/// `push` panics (debug builds) if `at` is earlier than the most recent
/// push — the monotonicity the FIFO equivalence rests on.
#[derive(Debug)]
pub struct MonotoneQueue<T> {
    fifo: std::collections::VecDeque<(Cycle, T)>,
}

impl<T> Default for MonotoneQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MonotoneQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MonotoneQueue {
            fifo: std::collections::VecDeque::new(),
        }
    }

    /// Schedules `payload` for cycle `at`; `at` must be no earlier than
    /// any previously pushed time.
    pub fn push(&mut self, at: Cycle, payload: T) {
        debug_assert!(
            self.fifo.back().is_none_or(|(t, _)| *t <= at),
            "MonotoneQueue pushes must be in non-decreasing time order"
        );
        self.fifo.push_back((at, payload));
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.fifo.front().is_some_and(|(t, _)| *t <= now) {
            self.fifo.pop_front()
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.fifo.front().map(|(t, _)| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "a");
        q.push(Cycle(10), "b");
        assert_eq!(q.pop_due(Cycle(4)), None);
        assert_eq!(q.pop_due(Cycle(5)), Some((Cycle(5), "a")));
        assert_eq!(q.pop_due(Cycle(5)), None);
        assert_eq!(q.pop_due(Cycle(100)), Some((Cycle(10), "b")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle(7), ());
        q.push(Cycle(3), ());
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_is_stable() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        q.push(Cycle(1), 'b');
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        q.push(Cycle(1), 'c');
        assert_eq!(q.pop(), Some((Cycle(1), 'b')));
        assert_eq!(q.pop(), Some((Cycle(1), 'c')));
    }

    #[test]
    fn monotone_queue_matches_event_queue_order() {
        // Fixed-delay schedule: both queues see identical (time, payload)
        // pushes; pops must agree at every step.
        let mut heap = EventQueue::new();
        let mut fifo = MonotoneQueue::new();
        for t in 0..20u64 {
            for k in 0..3 {
                heap.push(Cycle(t + 2), (t, k));
                fifo.push(Cycle(t + 2), (t, k));
            }
            let now = Cycle(t);
            assert_eq!(heap.peek_time(), fifo.peek_time());
            loop {
                let a = heap.pop_due(now);
                let b = fifo.pop_due(now);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
        assert_eq!(heap.len(), fifo.len());
    }

    #[test]
    fn monotone_queue_pop_due_respects_now() {
        let mut q = MonotoneQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(5), "a");
        q.push(Cycle(10), "b");
        assert_eq!(q.peek_time(), Some(Cycle(5)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(Cycle(4)), None);
        assert_eq!(q.pop_due(Cycle(5)), Some((Cycle(5), "a")));
        assert_eq!(q.pop_due(Cycle(5)), None);
        assert_eq!(q.pop_due(Cycle(100)), Some((Cycle(10), "b")));
        assert!(q.is_empty());
    }
}
