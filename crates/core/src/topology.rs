//! Node identity, receiver sharing, and VCSEL inventory.
//!
//! The FSOI fabric is a quasi-crossbar: every node owns a dedicated lane of
//! VCSELs per destination (small/medium systems) or a steerable phase array
//! (large systems), and a small number of shared receivers per lane kind.
//! With `R` receivers per node, the `N − 1` potential transmitters are
//! evenly divided among them (paper §4.3.1), so collisions only occur
//! between senders that share a receiver.

use core::fmt;

/// Identifies a node (a processor core / network endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Which of a destination's `R` receivers a given sender targets.
///
/// Senders are ranked by id with the destination itself excluded, then
/// dealt round-robin across receivers, which divides the `N − 1` potential
/// transmitters evenly (±1) among them.
///
/// # Panics
///
/// Panics if `src == dst`, either id is out of range, or `receivers == 0`.
pub fn receiver_index(src: NodeId, dst: NodeId, nodes: usize, receivers: usize) -> usize {
    assert!(receivers > 0, "need at least one receiver");
    assert!(src.0 < nodes && dst.0 < nodes, "node id out of range");
    assert_ne!(src, dst, "a node does not transmit to itself");
    // Rank of src among {0..nodes} \ {dst}.
    let rank = if src.0 < dst.0 { src.0 } else { src.0 - 1 };
    rank % receivers
}

/// The set of senders sharing receiver `rx` at `dst`.
pub fn senders_for_receiver(dst: NodeId, rx: usize, nodes: usize, receivers: usize) -> Vec<NodeId> {
    (0..nodes)
        .map(NodeId)
        .filter(|&s| s != dst && receiver_index(s, dst, nodes, receivers) == rx)
        .collect()
}

/// Total transmit VCSELs for a dedicated-lane (non-phase-array) system:
/// `N (N−1) k` where `k` is the per-destination lane width in bits, plus
/// one confirmation VCSEL per node.
///
/// The paper's example: `N = 16, k = 9` needs ≈ 2000 VCSELs.
pub fn dedicated_vcsel_count(nodes: usize, lane_bits: usize) -> usize {
    nodes * (nodes - 1) * lane_bits + nodes
}

/// Area of a 2-D VCSEL array with square devices of `device_um` on a pitch
/// of `device_um + spacing_um`, in mm².
///
/// The paper: 2000 devices of 20 µm with 30 µm spacing occupy ≈ 5 mm².
pub fn array_area_mm2(count: usize, device_um: f64, spacing_um: f64) -> f64 {
    let pitch = device_um + spacing_um; // µm
    count as f64 * pitch * pitch * 1e-6 // µm² → mm²
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let n: NodeId = 3usize.into();
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "node 3");
    }

    #[test]
    fn receiver_assignment_is_balanced() {
        let nodes = 16;
        let receivers = 2;
        for dst in 0..nodes {
            let mut counts = vec![0usize; receivers];
            for src in 0..nodes {
                if src == dst {
                    continue;
                }
                counts[receiver_index(NodeId(src), NodeId(dst), nodes, receivers)] += 1;
            }
            // 15 senders over 2 receivers: 8 and 7.
            assert!(counts.iter().all(|&c| c == 7 || c == 8), "{counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), nodes - 1);
        }
    }

    #[test]
    fn receiver_assignment_is_stable() {
        let a = receiver_index(NodeId(3), NodeId(7), 16, 2);
        let b = receiver_index(NodeId(3), NodeId(7), 16, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn senders_for_receiver_partition() {
        let dst = NodeId(5);
        let s0 = senders_for_receiver(dst, 0, 16, 2);
        let s1 = senders_for_receiver(dst, 1, 16, 2);
        assert_eq!(s0.len() + s1.len(), 15);
        assert!(s0.iter().all(|s| !s1.contains(s)));
        assert!(!s0.contains(&dst) && !s1.contains(&dst));
    }

    #[test]
    fn single_receiver_takes_everyone() {
        let s = senders_for_receiver(NodeId(0), 0, 4, 1);
        assert_eq!(s, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "does not transmit to itself")]
    fn self_send_panics() {
        receiver_index(NodeId(2), NodeId(2), 16, 2);
    }

    #[test]
    fn paper_vcsel_inventory() {
        // N = 16, k = 9 bits (6 data + 3 meta): "approximately 2000 VCSELs".
        let count = dedicated_vcsel_count(16, 9);
        assert_eq!(count, 16 * 15 * 9 + 16);
        assert!((2000..2300).contains(&count), "count = {count}");
        // "2000 VCSELs occupy a total area of about 5 mm²" at 20 µm devices
        // with 30 µm spacing.
        let area = array_area_mm2(2000, 20.0, 30.0);
        assert!((area - 5.0).abs() < 0.1, "area = {area} mm²");
    }
}
