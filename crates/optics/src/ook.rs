//! On-off-keying (OOK) superposition semantics.
//!
//! The FSOI network deliberately allows packets from different senders to
//! *collide* at a shared receiver. Physically, the light pulses add: with
//! simple OOK and a fixed decision threshold, the received bit stream is
//! the **logical OR** of the colliding streams (paper §4.3.2). The PID/~PID
//! header encoding exploits exactly this property to detect collisions.
//!
//! This module provides both views: the power-domain superposition and the
//! resulting bit-domain OR.

use crate::units::Power;

/// Superposes the optical powers of simultaneously arriving beams
/// (incoherent addition — the VCSELs are mutually incoherent sources).
pub fn superpose_powers(beams: &[Power]) -> Power {
    beams.iter().fold(Power::from_watts(0.0), |acc, &p| acc + p)
}

/// The decision a threshold receiver makes on an incident power level.
pub fn threshold_detect(incident: Power, threshold: Power) -> bool {
    incident.as_watts() >= threshold.as_watts()
}

/// Bit-domain superposition of colliding OOK words: the logical OR.
///
/// ```
/// use fsoi_optics::ook::superpose_words;
/// assert_eq!(superpose_words(&[0b1010, 0b0110]), 0b1110);
/// assert_eq!(superpose_words(&[]), 0);
/// ```
pub fn superpose_words(words: &[u64]) -> u64 {
    words.iter().fold(0, |acc, &w| acc | w)
}

/// Bit-domain superposition of variable-length bit vectors (shorter vectors
/// are treated as dark — zero — beyond their end).
pub fn superpose_bitvecs(streams: &[&[bool]]) -> Vec<bool> {
    let len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    (0..len)
        .map(|i| streams.iter().any(|s| s.get(i).copied().unwrap_or(false)))
        .collect()
}

/// End-to-end demonstration that power-domain superposition with a
/// threshold equals the bit-domain OR, given per-sender one/zero levels
/// that individually clear/respect the threshold.
pub fn or_equivalence_holds(
    one_level: Power,
    zero_level: Power,
    threshold: Power,
    n_senders: usize,
) -> bool {
    // A single one must clear the threshold; all-zeros from every sender
    // must stay below it.
    let single_one =
        one_level.as_watts() + (n_senders.saturating_sub(1)) as f64 * zero_level.as_watts();
    let all_zero = n_senders as f64 * zero_level.as_watts();
    single_one >= threshold.as_watts() && all_zero < threshold.as_watts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_add() {
        let total = superpose_powers(&[
            Power::from_milliwatts(0.1),
            Power::from_milliwatts(0.2),
            Power::from_milliwatts(0.3),
        ]);
        assert!((total.to_milliwatts() - 0.6).abs() < 1e-12);
        assert_eq!(superpose_powers(&[]).as_watts(), 0.0);
    }

    #[test]
    fn threshold_detection() {
        let th = Power::from_milliwatts(0.05);
        assert!(threshold_detect(Power::from_milliwatts(0.1), th));
        assert!(!threshold_detect(Power::from_milliwatts(0.01), th));
        assert!(threshold_detect(th, th), "boundary counts as one");
    }

    #[test]
    fn word_or() {
        assert_eq!(superpose_words(&[0xF0, 0x0F]), 0xFF);
        assert_eq!(superpose_words(&[0xAA]), 0xAA);
        assert_eq!(superpose_words(&[]), 0);
    }

    #[test]
    fn bitvec_or_with_unequal_lengths() {
        let a = [true, false, true];
        let b = [false, true];
        let out = superpose_bitvecs(&[&a, &b]);
        assert_eq!(out, vec![true, true, true]);
        assert!(superpose_bitvecs(&[]).is_empty());
    }

    #[test]
    fn or_equivalence_for_paper_levels() {
        // With the paper's 11:1 extinction ratio, two zero levels still sit
        // well below a threshold placed midway between one and zero, so
        // the OR model holds for small collision multiplicities.
        let one = Power::from_milliwatts(0.10);
        let zero = Power::from_milliwatts(0.10 / 11.0);
        let threshold = Power::from_milliwatts(0.05);
        assert!(or_equivalence_holds(one, zero, threshold, 2));
        assert!(or_equivalence_holds(one, zero, threshold, 3));
        // With very many senders the accumulated zero-level light would
        // eventually cross the threshold — the model (and the paper's
        // design) assumes small collision multiplicities per receiver.
        assert!(!or_equivalence_holds(one, zero, threshold, 7));
    }
}
