//! Strongly-typed physical quantities.
//!
//! The link-budget math mixes watts, dBm, amperes, metres and hertz; the
//! newtypes here make unit mistakes a compile error rather than a silently
//! wrong Table 1. Conversions follow the Rust API guidelines' `as_`/`to_`
//! conventions: `as_watts` exposes the underlying representation for free,
//! `to_dbm` performs an actual computation.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $ctor:ident, $getter:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            #[doc = concat!("Creates a value in ", $unit, ".")]
            #[inline]
            pub fn $ctor(v: f64) -> Self {
                $name(v)
            }

            #[doc = concat!("Returns the value in ", $unit, ".")]
            #[inline]
            pub fn $getter(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

quantity!(
    /// Optical or electrical power in watts.
    Power, "W", from_watts, as_watts
);
quantity!(
    /// A physical length in metres.
    Length, "m", from_meters, as_meters
);
quantity!(
    /// Electrical current in amperes.
    Current, "A", from_amps, as_amps
);
quantity!(
    /// Electrical potential in volts.
    Voltage, "V", from_volts, as_volts
);
quantity!(
    /// Frequency or bandwidth in hertz.
    Frequency, "Hz", from_hz, as_hz
);
quantity!(
    /// Capacitance in farads.
    Capacitance, "F", from_farads, as_farads
);
quantity!(
    /// Resistance in ohms.
    Resistance, "Ω", from_ohms, as_ohms
);
quantity!(
    /// A time interval in seconds.
    TimeSpan, "s", from_seconds, as_seconds
);

impl Power {
    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Power::from_watts(mw * 1e-3)
    }

    /// The power in milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        self.as_watts() * 1e3
    }

    /// Creates a power from a dBm value (`0 dBm` = 1 mW).
    #[inline]
    pub fn from_dbm(dbm: f64) -> Self {
        Power::from_watts(1e-3 * 10f64.powf(dbm / 10.0))
    }

    /// The power in dBm. Returns `-inf` for zero power.
    #[inline]
    pub fn to_dbm(self) -> f64 {
        10.0 * (self.as_watts() / 1e-3).log10()
    }

    /// Attenuates this power by `loss`.
    #[inline]
    pub fn attenuate(self, loss: Loss) -> Power {
        Power::from_watts(self.as_watts() * loss.transmittance())
    }
}

impl Length {
    /// Creates a length from micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Length::from_meters(um * 1e-6)
    }

    /// The length in micrometres.
    #[inline]
    pub fn to_micrometers(self) -> f64 {
        self.as_meters() * 1e6
    }

    /// Creates a length from millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Length::from_meters(mm * 1e-3)
    }

    /// Creates a length from nanometres (convenient for wavelengths).
    #[inline]
    pub fn from_nanometers(nm: f64) -> Self {
        Length::from_meters(nm * 1e-9)
    }
}

impl Current {
    /// Creates a current from milliamperes.
    #[inline]
    pub fn from_milliamps(ma: f64) -> Self {
        Current::from_amps(ma * 1e-3)
    }

    /// The current in milliamperes.
    #[inline]
    pub fn to_milliamps(self) -> f64 {
        self.as_amps() * 1e3
    }

    /// The current in microamperes.
    #[inline]
    pub fn to_microamps(self) -> f64 {
        self.as_amps() * 1e6
    }
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency::from_hz(ghz * 1e9)
    }

    /// The frequency in gigahertz.
    #[inline]
    pub fn to_ghz(self) -> f64 {
        self.as_hz() * 1e-9
    }
}

impl TimeSpan {
    /// Creates a time span from picoseconds.
    #[inline]
    pub fn from_picoseconds(ps: f64) -> Self {
        TimeSpan::from_seconds(ps * 1e-12)
    }

    /// The time span in picoseconds.
    #[inline]
    pub fn to_picoseconds(self) -> f64 {
        self.as_seconds() * 1e12
    }
}

impl Capacitance {
    /// Creates a capacitance from femtofarads.
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Capacitance::from_farads(ff * 1e-15)
    }

    /// The capacitance in femtofarads.
    #[inline]
    pub fn to_femtofarads(self) -> f64 {
        self.as_farads() * 1e15
    }
}

/// An optical attenuation expressed in decibels of *loss* (positive =
/// attenuating).
///
/// ```
/// use fsoi_optics::units::Loss;
/// let l = Loss::from_db(3.0103);
/// assert!((l.transmittance() - 0.5).abs() < 1e-4);
/// let combined = l + Loss::from_db(3.0103);
/// assert!((combined.db() - 6.0206).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Loss(f64);

impl Loss {
    /// No attenuation.
    pub const NONE: Loss = Loss(0.0);

    /// Creates a loss from decibels (positive attenuates).
    #[inline]
    pub fn from_db(db: f64) -> Self {
        Loss(db)
    }

    /// Creates a loss from a power transmittance in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not in `(0, 1]`.
    #[inline]
    pub fn from_transmittance(t: f64) -> Self {
        assert!(t > 0.0 && t <= 1.0, "transmittance must be in (0, 1]");
        Loss(-10.0 * t.log10())
    }

    /// The loss in decibels.
    #[inline]
    pub fn db(self) -> f64 {
        self.0
    }

    /// The equivalent power transmittance.
    #[inline]
    pub fn transmittance(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }
}

impl Add for Loss {
    type Output = Loss;
    #[inline]
    fn add(self, rhs: Loss) -> Loss {
        Loss(self.0 + rhs.0) // dB losses of cascaded elements add
    }
}

impl fmt::Display for Loss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Elementary charge (C).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
/// Speed of light in vacuum (m/s).
pub const SPEED_OF_LIGHT: f64 = 2.997_924_58e8;
/// Planck constant (J·s).
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Photon energy at the given wavelength, in joules.
///
/// ```
/// use fsoi_optics::units::{photon_energy, Length};
/// let e = photon_energy(Length::from_nanometers(980.0));
/// assert!((e - 2.0e-19).abs() < 0.1e-19); // ~1.27 eV
/// ```
///
/// # Panics
///
/// Panics if the wavelength is not positive.
pub fn photon_energy(wavelength: Length) -> f64 {
    let lambda = wavelength.as_meters();
    assert!(lambda > 0.0, "wavelength must be positive");
    PLANCK * SPEED_OF_LIGHT / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_dbm_roundtrip() {
        let p = Power::from_dbm(-10.0);
        assert!((p.to_milliwatts() - 0.1).abs() < 1e-9);
        assert!((p.to_dbm() + 10.0).abs() < 1e-9);
        assert!((Power::from_milliwatts(1.0).to_dbm()).abs() < 1e-9);
    }

    #[test]
    fn power_attenuate() {
        let p = Power::from_milliwatts(2.0).attenuate(Loss::from_db(3.0103));
        assert!((p.to_milliwatts() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn length_conversions() {
        assert!((Length::from_micrometers(90.0).as_meters() - 9e-5).abs() < 1e-12);
        assert!((Length::from_millimeters(20.0).as_meters() - 0.02).abs() < 1e-12);
        assert!((Length::from_nanometers(980.0).as_meters() - 9.8e-7).abs() < 1e-15);
        assert!((Length::from_meters(1e-6).to_micrometers() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn current_voltage_frequency() {
        assert!((Current::from_milliamps(0.48).as_amps() - 4.8e-4).abs() < 1e-12);
        assert!((Current::from_amps(5e-5).to_microamps() - 50.0).abs() < 1e-9);
        assert!((Frequency::from_ghz(40.0).as_hz() - 4e10).abs() < 1.0);
        assert!((Frequency::from_hz(3.6e10).to_ghz() - 36.0).abs() < 1e-9);
        assert!((Voltage::from_volts(2.0).as_volts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timespan_capacitance() {
        assert!((TimeSpan::from_picoseconds(1.7).as_seconds() - 1.7e-12).abs() < 1e-20);
        assert!((TimeSpan::from_seconds(1e-12).to_picoseconds() - 1.0).abs() < 1e-9);
        assert!((Capacitance::from_femtofarads(90.0).as_farads() - 9e-14).abs() < 1e-20);
        assert!((Capacitance::from_farads(1e-13).to_femtofarads() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn loss_addition_and_transmittance() {
        let l = Loss::from_db(2.0) + Loss::from_db(0.6);
        assert!((l.db() - 2.6).abs() < 1e-12);
        let t = Loss::from_transmittance(0.25);
        assert!((t.db() - 6.0206).abs() < 1e-3);
        assert!((Loss::NONE.transmittance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "transmittance must be in (0, 1]")]
    fn bad_transmittance_panics() {
        let _ = Loss::from_transmittance(0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let p = Power::from_watts(2.0) * 3.0;
        assert!((p.as_watts() - 6.0).abs() < 1e-12);
        let r = Power::from_watts(6.0) / Power::from_watts(2.0);
        assert!((r - 3.0).abs() < 1e-12);
        let d = Power::from_watts(6.0) / 2.0;
        assert!((d.as_watts() - 3.0).abs() < 1e-12);
        let s = Power::from_watts(5.0) - Power::from_watts(2.0);
        assert!((s.as_watts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn displays() {
        assert!(Power::from_watts(1.0).to_string().contains('W'));
        assert!(Loss::from_db(2.6).to_string().contains("dB"));
    }

    #[test]
    fn photon_energy_980nm() {
        let e = photon_energy(Length::from_nanometers(980.0));
        let ev = e / ELEMENTARY_CHARGE;
        assert!(
            (ev - 1.265).abs() < 0.01,
            "980 nm photon is ~1.265 eV, got {ev}"
        );
    }
}
